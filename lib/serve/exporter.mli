(** Shared CLI export-path helper — the single
    "write-or-exit-1-one-line" funnel both dbreak and dbreakd use for
    their export flags.

    [export path_opt render] renders and writes only when the flag was
    given; an unwritable path raises [Sys_error], which each front
    end's one handler reports as a one-line message with exit code 1
    (pinned by bin/dune's runtest rules). *)

val read_file : string -> string
(** Whole-file read (binary). *)

val write_file : string -> string -> unit
(** Whole-file write; truncates.  @raise Sys_error like [open_out]. *)

val export : string option -> (unit -> string) -> unit
(** [export (Some path) render] = [write_file path (render ())];
    [None] is a no-op (the flag was not given). *)
