(** [dbp-wire/1] — the daemon's machine-independent command codec.

    Line-delimited frames in the spirit of Hanson's revisited debugger
    protocol: one command or reply per newline-terminated line, fields
    separated by single spaces, arbitrary strings (program sources,
    telemetry JSON, error messages) carried as percent-escaped tokens
    so any byte sequence survives the wire.  Every reply and event
    carries the session id it belongs to and a per-session
    monotonically increasing sequence number, which makes a session's
    reply stream a deterministic, diffable transcript — the property
    the service bench and the [-j] parity tests lean on.

    Client-level frames (the [hello] greeting and errors about frames
    that never reached a session) use the reserved session id ["-"]
    with the client's own sequence counter. *)

val version : string
(** ["dbp-wire/1"]. *)

(** {1 Token escaping} *)

val escape : string -> string
(** Render an arbitrary string as one space-free token: [%], space,
    newline, carriage return and bytes outside printable ASCII become
    [%XX] (two uppercase hex digits); the empty string becomes the
    two-byte token ["%z"] (unambiguous — [z] is not a hex digit). *)

val unescape : string -> (string, string) result
(** Inverse of {!escape}; [Error] on a dangling or non-hex escape. *)

(** {1 Commands} *)

type source =
  | Workload of string  (** a registered benchmark, by {!Workloads.Spec} name *)
  | Program of string   (** inline mini-C source (escaped on the wire) *)

type target =
  | Var of string                       (** a global, resolved server-side *)
  | Region of { lo : int; len : int }   (** a raw byte range *)

type command =
  | Hello
  | Open of { sid : string; source : source; strategy : string; opt : string }
  | Arm of { sid : string; target : target }
  | Disarm of { sid : string; name : string }
  | Run of { sid : string; fuel : int }
  | Query_last_write of { sid : string; target : string }
  | Query_history of { sid : string; target : string; len : int }
  | Travel of { sid : string; insn : int }
  | Report of { sid : string }
  | Verify of { sid : string }
  | Close of { sid : string }

val command_sid : command -> string option
(** The session a command addresses ([None] for [Hello]). *)

val encode_command : command -> string
(** One line, no trailing newline. *)

val decode_command : string -> (command, string) result
(** Parse one frame; [Error] explains the malformation (unknown verb,
    arity mismatch, bad integer, bad escape, bad target kind). *)

(** {1 Replies and events} *)

type reply_body =
  | Hello_ok                        (** [hello dbp-wire/1] *)
  | Opened of { name : string; strategy : string; opt : string }
  | Armed of { name : string; lo : int; len : int }
  | Disarmed of { name : string }
  | Running of { executed : int }   (** fuel exhausted; session still live *)
  | Exited of { code : int; executed : int; output : string }
  | Hit of {
      name : string;
      insn : int;
      pc : int;
      addr : int;
      value : int;
      func : string;
    }  (** async event streamed while a [run] command executes *)
  | Last_write of {
      target : string;
      addr : int;
      insn : int;
      pc : int;
      old_v : int;
      new_v : int;
      wtype : string;
      func : string;
    }
  | Never_written of { target : string; addr : int }
  | History of { count : int }
      (** followed by exactly [count] [Write] frames *)
  | Write of {
      insn : int;
      pc : int;
      addr : int;
      old_v : int;
      new_v : int;
      wtype : string;
    }
  | Traveled of { insn : int; reexecuted : int; pc : int }
  | Report_json of string           (** telemetry report JSON, escaped *)
  | Verified of { total : int; proved : int; refuted : int; unknown : int }
  | Closed
  | Error of string

type reply = { r_sid : string; r_seq : int; r_body : reply_body }

val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result

val terminal : reply_body -> bool
(** Whether this frame completes a command from the client's point of
    view: everything but [Hit] and [Write] (and [History], which
    announces the [Write] frames still owed). *)
