(* Shared CLI export-path helper.  Both front ends (dbreak and
   dbreakd) funnel every export flag through [export]: render only
   when the flag was given, and let [Sys_error] escape to the caller's
   single handler, which turns an unwritable path into the same
   one-line exit-1 failure for every flag — the contract pinned by
   bin/dune's runtest rules. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let export path_opt render =
  match path_opt with
  | None -> ()
  | Some path -> write_file path (render ())
