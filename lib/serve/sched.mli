(** N-domain session shard pool.

    bench/pool.ml's per-domain commutative-sink pattern, promoted into
    a reusable scheduler for the service daemon: sessions are hashed to
    a shard by session id, every job posted under a key runs on that
    shard's worker domain in post order (a session's commands stay
    sequential; distinct sessions run in parallel), and long commands
    achieve round-robin fairness by executing one fuel slice and
    re-posting their continuation behind other sessions' queued work.

    Each shard owns a telemetry sink registry; {!merged_report} folds
    the sinks with the commutative {!Telemetry.merge}, so merged
    telemetry is byte-identical for every shard count. *)

type t

val create : ?shards:int -> unit -> t
(** Spawn [shards] worker domains (default 1, min 1). *)

val shards : t -> int

val shard_of : t -> string -> int
(** Stable key → shard hash (same mapping for a given shard count on
    every run). *)

val post : t -> key:string -> (unit -> unit) -> unit
(** Enqueue a job on [key]'s shard.  Jobs with the same key run in post
    order, on the same domain.
    @raise Invalid_argument after {!shutdown}. *)

val drain : t -> unit
(** Block until every queue is empty and every worker idle — including
    continuations the jobs re-post while draining. *)

val sink : t -> shard:int -> Telemetry.t
(** The shard's telemetry sink.  Only jobs running on that shard may
    write to it; read it quiescently (after {!drain}). *)

val merged_report : t -> Telemetry.report
(** Commutative merge over the shard sinks. *)

val failures : t -> int
(** Jobs that escaped with an exception (backstop counter; the daemon
    converts command errors to error replies before they get here). *)

val shutdown : t -> unit
(** {!drain}, then stop and join every worker.  Idempotent. *)
