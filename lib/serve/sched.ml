(* N-domain session shard pool — bench/pool.ml's per-domain
   commutative-sink pattern promoted into a reusable scheduler.

   Each shard owns one worker domain, one FIFO job queue and one
   telemetry sink registry.  Sessions are hashed to a shard by their
   (client-chosen) session id, and every job posted under that key runs
   on that shard's domain, in post order — so a session's commands
   execute sequentially with no locking around the session itself,
   while different sessions proceed in parallel.  Fairness comes from
   the queue discipline: a long-running command (the daemon's [run]
   verb) executes one fuel slice and re-posts its continuation, which
   lands *behind* any other session's queued work on the same shard —
   round-robin, so one session cannot starve the loop.

   The sinks merge exactly as the bench harness merges its per-domain
   sinks: closed sessions' reports are absorbed into their shard's
   sink, and {!merged_report} folds the sinks with the commutative
   {!Telemetry.merge} — so the merged telemetry does not depend on the
   shard count, the property the service bench diffs across [-j]. *)

type shard = {
  mu : Mutex.t;
  cv : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable busy : bool;  (* a job is executing right now *)
  sink : Telemetry.t;
  mutable domain : unit Domain.t option;
}

type t = {
  shards : shard array;
  mutable running : bool;  (* writes under every shard's [mu] *)
  failures : int Atomic.t;
}

let shards t = Array.length t.shards

let shard_of t key = Hashtbl.hash key mod Array.length t.shards

let sink t ~shard = t.shards.(shard).sink

let worker t sh () =
  let rec loop () =
    Mutex.lock sh.mu;
    while t.running && Queue.is_empty sh.queue do
      Condition.wait sh.cv sh.mu
    done;
    if Queue.is_empty sh.queue then begin
      (* Shutdown: queue drained and [running] lowered. *)
      Mutex.unlock sh.mu
    end
    else begin
      let job = Queue.pop sh.queue in
      sh.busy <- true;
      Mutex.unlock sh.mu;
      (try job ()
       with _ ->
         (* A job that escapes its own error handling must not kill the
            shard; the daemon wraps command execution in its own
            error-reply path, so this is a last-resort backstop. *)
         Atomic.incr t.failures);
      Mutex.lock sh.mu;
      sh.busy <- false;
      Condition.broadcast sh.cv;
      Mutex.unlock sh.mu;
      loop ()
    end
  in
  loop ()

let create ?(shards = 1) () =
  let shards = max 1 shards in
  let mk _ =
    let sink = Telemetry.create () in
    (* Absorbed sample rings land here; sized like the bench pool's
       sinks so nothing ever drops (a drop would make the merged
       multiset depend on which shard absorbed which session). *)
    Telemetry.set_sample_capacity sink 65536;
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      queue = Queue.create ();
      busy = false;
      sink;
      domain = None;
    }
  in
  let t =
    {
      shards = Array.init shards mk;
      running = true;
      failures = Atomic.make 0;
    }
  in
  Array.iter
    (fun sh -> sh.domain <- Some (Domain.spawn (worker t sh)))
    t.shards;
  t

let post t ~key job =
  let sh = t.shards.(shard_of t key) in
  Mutex.lock sh.mu;
  if not t.running then begin
    Mutex.unlock sh.mu;
    invalid_arg "Sched.post: pool is shut down"
  end;
  Queue.push job sh.queue;
  Condition.broadcast sh.cv;
  Mutex.unlock sh.mu

let drain t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.mu;
      while not (Queue.is_empty sh.queue) || sh.busy do
        Condition.wait sh.cv sh.mu
      done;
      Mutex.unlock sh.mu)
    t.shards

let failures t = Atomic.get t.failures

let merged_report t =
  Telemetry.merge
    (Array.to_list (Array.map (fun sh -> Telemetry.report sh.sink) t.shards))

let shutdown t =
  if t.running then begin
    drain t;
    Array.iter
      (fun sh ->
        Mutex.lock sh.mu;
        t.running <- false;
        Condition.broadcast sh.cv;
        Mutex.unlock sh.mu)
      t.shards;
    Array.iter
      (fun sh ->
        match sh.domain with
        | Some d ->
          Domain.join d;
          sh.domain <- None
        | None -> ())
      t.shards
  end
