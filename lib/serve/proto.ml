(* dbp-wire/1 codec.  See the interface for the frame model.  The
   implementation is a straight split-on-space tokenizer: commands and
   replies never contain empty fields (the escaper maps "" to "%z"),
   so [String.split_on_char ' '] is unambiguous, and every string
   field round-trips through {!escape}/{!unescape}. *)

let version = "dbp-wire/1"

(* --- token escaping --------------------------------------------------- *)

let needs_escape c =
  c = '%' || c = ' ' || Char.code c < 0x21 || Char.code c > 0x7e

let escape s =
  if s = "" then "%z"
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | _ -> None

let unescape s =
  if s = "%z" then Ok ""
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents b)
      else if s.[i] <> '%' then begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
      else if i + 2 >= n then Error (Printf.sprintf "dangling escape in %S" s)
      else
        match (hex_val s.[i + 1], hex_val s.[i + 2]) with
        | Some h, Some l ->
          Buffer.add_char b (Char.chr ((h * 16) + l));
          go (i + 3)
        | _ -> Error (Printf.sprintf "bad escape %S in %S" (String.sub s i 3) s)
    in
    go 0
  end

(* --- commands --------------------------------------------------------- *)

type source = Workload of string | Program of string
type target = Var of string | Region of { lo : int; len : int }

type command =
  | Hello
  | Open of { sid : string; source : source; strategy : string; opt : string }
  | Arm of { sid : string; target : target }
  | Disarm of { sid : string; name : string }
  | Run of { sid : string; fuel : int }
  | Query_last_write of { sid : string; target : string }
  | Query_history of { sid : string; target : string; len : int }
  | Travel of { sid : string; insn : int }
  | Report of { sid : string }
  | Verify of { sid : string }
  | Close of { sid : string }

let command_sid = function
  | Hello -> None
  | Open { sid; _ }
  | Arm { sid; _ }
  | Disarm { sid; _ }
  | Run { sid; _ }
  | Query_last_write { sid; _ }
  | Query_history { sid; _ }
  | Travel { sid; _ }
  | Report { sid }
  | Verify { sid }
  | Close { sid } ->
    Some sid

let encode_command = function
  | Hello -> "hello"
  | Open { sid; source; strategy; opt } ->
    let kind, body =
      match source with
      | Workload w -> ("workload", w)
      | Program p -> ("program", p)
    in
    Printf.sprintf "open %s %s %s %s %s" (escape sid) kind (escape body)
      (escape strategy) (escape opt)
  | Arm { sid; target = Var v } ->
    Printf.sprintf "arm %s var %s" (escape sid) (escape v)
  | Arm { sid; target = Region { lo; len } } ->
    Printf.sprintf "arm %s region %d %d" (escape sid) lo len
  | Disarm { sid; name } ->
    Printf.sprintf "disarm %s %s" (escape sid) (escape name)
  | Run { sid; fuel } -> Printf.sprintf "run %s %d" (escape sid) fuel
  | Query_last_write { sid; target } ->
    Printf.sprintf "query %s last-write %s" (escape sid) (escape target)
  | Query_history { sid; target; len } ->
    Printf.sprintf "query %s history %s %d" (escape sid) (escape target) len
  | Travel { sid; insn } -> Printf.sprintf "travel %s %d" (escape sid) insn
  | Report { sid } -> Printf.sprintf "report %s" (escape sid)
  | Verify { sid } -> Printf.sprintf "verify %s" (escape sid)
  | Close { sid } -> Printf.sprintf "close %s" (escape sid)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let int_tok name s =
  let ok =
    s <> ""
    && (s.[0] <> '-' || String.length s > 1)
    && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s
    && (match String.index_from_opt s 1 '-' with None -> true | Some _ -> false)
  in
  match if ok then int_of_string_opt s else None with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad integer %S for %s" s name)

let decode_command line =
  match String.split_on_char ' ' line with
  | [ "hello" ] -> Ok Hello
  | "open" :: sid :: kind :: body :: strategy :: opt :: [] ->
    let* sid = unescape sid in
    let* body = unescape body in
    let* strategy = unescape strategy in
    let* opt = unescape opt in
    let* source =
      match kind with
      | "workload" -> Ok (Workload body)
      | "program" -> Ok (Program body)
      | k -> Error (Printf.sprintf "unknown open source kind %S" k)
    in
    Ok (Open { sid; source; strategy; opt })
  | [ "arm"; sid; "var"; v ] ->
    let* sid = unescape sid in
    let* v = unescape v in
    Ok (Arm { sid; target = Var v })
  | [ "arm"; sid; "region"; lo; len ] ->
    let* sid = unescape sid in
    let* lo = int_tok "lo" lo in
    let* len = int_tok "len" len in
    Ok (Arm { sid; target = Region { lo; len } })
  | [ "disarm"; sid; name ] ->
    let* sid = unescape sid in
    let* name = unescape name in
    Ok (Disarm { sid; name })
  | [ "run"; sid; fuel ] ->
    let* sid = unescape sid in
    let* fuel = int_tok "fuel" fuel in
    Ok (Run { sid; fuel })
  | [ "query"; sid; "last-write"; target ] ->
    let* sid = unescape sid in
    let* target = unescape target in
    Ok (Query_last_write { sid; target })
  | [ "query"; sid; "history"; target; len ] ->
    let* sid = unescape sid in
    let* target = unescape target in
    let* len = int_tok "len" len in
    Ok (Query_history { sid; target; len })
  | [ "travel"; sid; insn ] ->
    let* sid = unescape sid in
    let* insn = int_tok "insn" insn in
    Ok (Travel { sid; insn })
  | [ "report"; sid ] ->
    let* sid = unescape sid in
    Ok (Report { sid })
  | [ "verify"; sid ] ->
    let* sid = unescape sid in
    Ok (Verify { sid })
  | [ "close"; sid ] ->
    let* sid = unescape sid in
    Ok (Close { sid })
  | verb :: _ -> Error (Printf.sprintf "malformed %S command frame" verb)
  | [] -> Error "empty command frame"

(* --- replies ---------------------------------------------------------- *)

type reply_body =
  | Hello_ok
  | Opened of { name : string; strategy : string; opt : string }
  | Armed of { name : string; lo : int; len : int }
  | Disarmed of { name : string }
  | Running of { executed : int }
  | Exited of { code : int; executed : int; output : string }
  | Hit of {
      name : string;
      insn : int;
      pc : int;
      addr : int;
      value : int;
      func : string;
    }
  | Last_write of {
      target : string;
      addr : int;
      insn : int;
      pc : int;
      old_v : int;
      new_v : int;
      wtype : string;
      func : string;
    }
  | Never_written of { target : string; addr : int }
  | History of { count : int }
  | Write of {
      insn : int;
      pc : int;
      addr : int;
      old_v : int;
      new_v : int;
      wtype : string;
    }
  | Traveled of { insn : int; reexecuted : int; pc : int }
  | Report_json of string
  | Verified of { total : int; proved : int; refuted : int; unknown : int }
  | Closed
  | Error of string

type reply = { r_sid : string; r_seq : int; r_body : reply_body }

let terminal = function Hit _ | Write _ | History _ -> false | _ -> true

let encode_body = function
  | Hello_ok -> "hello " ^ version
  | Opened { name; strategy; opt } ->
    Printf.sprintf "opened %s %s %s" (escape name) (escape strategy)
      (escape opt)
  | Armed { name; lo; len } ->
    Printf.sprintf "armed %s %d %d" (escape name) lo len
  | Disarmed { name } -> Printf.sprintf "disarmed %s" (escape name)
  | Running { executed } -> Printf.sprintf "running %d" executed
  | Exited { code; executed; output } ->
    Printf.sprintf "exited %d %d %s" code executed (escape output)
  | Hit { name; insn; pc; addr; value; func } ->
    Printf.sprintf "hit %s %d %d %d %d %s" (escape name) insn pc addr value
      (escape func)
  | Last_write { target; addr; insn; pc; old_v; new_v; wtype; func } ->
    Printf.sprintf "last-write %s %d %d %d %d %d %s %s" (escape target) addr
      insn pc old_v new_v (escape wtype) (escape func)
  | Never_written { target; addr } ->
    Printf.sprintf "never-written %s %d" (escape target) addr
  | History { count } -> Printf.sprintf "history %d" count
  | Write { insn; pc; addr; old_v; new_v; wtype } ->
    Printf.sprintf "write %d %d %d %d %d %s" insn pc addr old_v new_v
      (escape wtype)
  | Traveled { insn; reexecuted; pc } ->
    Printf.sprintf "traveled %d %d %d" insn reexecuted pc
  | Report_json j -> Printf.sprintf "report %s" (escape j)
  | Verified { total; proved; refuted; unknown } ->
    Printf.sprintf "verified %d %d %d %d" total proved refuted unknown
  | Closed -> "closed"
  | Error msg -> Printf.sprintf "error %s" (escape msg)

let encode_reply r =
  Printf.sprintf "%s %d %s" (escape r.r_sid) r.r_seq (encode_body r.r_body)

let decode_body = function
  | [ "hello"; v ] when v = version -> Ok Hello_ok
  | [ "opened"; name; strategy; opt ] ->
    let* name = unescape name in
    let* strategy = unescape strategy in
    let* opt = unescape opt in
    Ok (Opened { name; strategy; opt })
  | [ "armed"; name; lo; len ] ->
    let* name = unescape name in
    let* lo = int_tok "lo" lo in
    let* len = int_tok "len" len in
    Ok (Armed { name; lo; len })
  | [ "disarmed"; name ] ->
    let* name = unescape name in
    Ok (Disarmed { name })
  | [ "running"; executed ] ->
    let* executed = int_tok "executed" executed in
    Ok (Running { executed })
  | [ "exited"; code; executed; output ] ->
    let* code = int_tok "code" code in
    let* executed = int_tok "executed" executed in
    let* output = unescape output in
    Ok (Exited { code; executed; output })
  | [ "hit"; name; insn; pc; addr; value; func ] ->
    let* name = unescape name in
    let* insn = int_tok "insn" insn in
    let* pc = int_tok "pc" pc in
    let* addr = int_tok "addr" addr in
    let* value = int_tok "value" value in
    let* func = unescape func in
    Ok (Hit { name; insn; pc; addr; value; func })
  | [ "last-write"; target; addr; insn; pc; old_v; new_v; wtype; func ] ->
    let* target = unescape target in
    let* addr = int_tok "addr" addr in
    let* insn = int_tok "insn" insn in
    let* pc = int_tok "pc" pc in
    let* old_v = int_tok "old" old_v in
    let* new_v = int_tok "new" new_v in
    let* wtype = unescape wtype in
    let* func = unescape func in
    Ok (Last_write { target; addr; insn; pc; old_v; new_v; wtype; func })
  | [ "never-written"; target; addr ] ->
    let* target = unescape target in
    let* addr = int_tok "addr" addr in
    Ok (Never_written { target; addr })
  | [ "history"; count ] ->
    let* count = int_tok "count" count in
    Ok (History { count })
  | [ "write"; insn; pc; addr; old_v; new_v; wtype ] ->
    let* insn = int_tok "insn" insn in
    let* pc = int_tok "pc" pc in
    let* addr = int_tok "addr" addr in
    let* old_v = int_tok "old" old_v in
    let* new_v = int_tok "new" new_v in
    let* wtype = unescape wtype in
    Ok (Write { insn; pc; addr; old_v; new_v; wtype })
  | [ "traveled"; insn; reexecuted; pc ] ->
    let* insn = int_tok "insn" insn in
    let* reexecuted = int_tok "reexecuted" reexecuted in
    let* pc = int_tok "pc" pc in
    Ok (Traveled { insn; reexecuted; pc })
  | [ "report"; j ] ->
    let* j = unescape j in
    Ok (Report_json j)
  | [ "verified"; total; proved; refuted; unknown ] ->
    let* total = int_tok "total" total in
    let* proved = int_tok "proved" proved in
    let* refuted = int_tok "refuted" refuted in
    let* unknown = int_tok "unknown" unknown in
    Ok (Verified { total; proved; refuted; unknown })
  | [ "closed" ] -> Ok Closed
  | [ "error"; msg ] ->
    let* msg = unescape msg in
    Ok (Error msg)
  | kind :: _ -> Stdlib.Error (Printf.sprintf "malformed %S reply frame" kind)
  | [] -> Stdlib.Error "empty reply frame"

let decode_reply line =
  match String.split_on_char ' ' line with
  | sid :: seq :: body when body <> [] ->
    let* r_sid = unescape sid in
    let* r_seq = int_tok "seq" seq in
    let* r_body = decode_body body in
    Ok { r_sid; r_seq; r_body }
  | _ -> Stdlib.Error "reply frame shorter than SID SEQ KIND"
