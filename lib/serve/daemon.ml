(* dbreakd's engine: many independent debug sessions multiplexed over
   the dbp-wire/1 protocol, sharded across domains by {!Sched}.

   Division of labor:

   - The *main thread* (whoever calls {!submit} / {!server_poll})
     parses frames, routes them, owns the session table and the daemon
     registry ([commands_served]), and answers client-level frames
     ([hello], unknown-session errors) under the reserved sid ["-"].

   - A session's *shard domain* executes its commands in arrival
     order: opening (compile → instrument → load), arming, fuel-sliced
     running with async hit streaming, retroactive queries, closing.
     Every session-level reply is emitted there, which is what makes
     per-session sequence numbers and transcripts deterministic — the
     shard count only changes which sessions run concurrently, never
     the order of any one session's replies.

   - Telemetry follows the bench pool's commutative-sink discipline: a
     closed session's report is absorbed into its shard's sink, hits
     are counted into the shard sink as they stream, and
     {!merged_report} folds daemon registry + shard sinks + live
     sessions with {!Telemetry.merge} — so [GET /metrics] aggregates
     all live sessions and the merged report is byte-identical across
     shard counts once quiescent. *)

open Dbp

type sess = {
  sid : string;
  shard : int;
  owner : int;  (* owning client id; commands from others are refused *)
  emit_line : string -> unit;  (* append to the owner's outbox *)
  cmd_mu : Mutex.t;  (* guards [cmdq]: main thread pushes, shard pops *)
  cmdq : Proto.command Queue.t;  (* commands awaiting execution *)
  mutable cont : (unit -> unit) option;
      (* pending continuation of a sliced [run].  Checked before
         [cmdq], so slicing yields to other sessions on the shard but
         never reorders this session's own command stream.  Shard-only
         state. *)
  mutable seq : int;  (* bumped only on the owning shard *)
  mutable session : Session.t option;  (* None until [open] completes *)
  mutable dbg : Debugger.t option;
  mutable watches : (string * Debugger.watchpoint) list;
  mutable exited : int option;
  mutable closed : bool;
  mutable in_query : bool;  (* suppress hit streaming during replay *)
}

type client = {
  cid : int;
  out_mu : Mutex.t;
  outbox : string Queue.t;
  mutable cseq : int;  (* sid "-" counter; main thread only *)
  mutable disconnected : bool;
}

type t = {
  sched : Sched.t;
  slice : int;  (* fairness quantum: instructions per run slice *)
  reg : Telemetry.t;  (* daemon registry; main thread only *)
  mu : Mutex.t;  (* guards [sessions] *)
  sessions : (string, sess) Hashtbl.t;
  mutable next_cid : int;
}

let default_slice = 50_000

let create ?(shards = 1) ?(slice = default_slice) () =
  {
    sched = Sched.create ~shards ();
    slice = max 1 slice;
    reg = Telemetry.create ();
    mu = Mutex.create ();
    sessions = Hashtbl.create 64;
    next_cid = 0;
  }

let shards t = Sched.shards t.sched

let client t =
  let c =
    {
      cid = t.next_cid;
      out_mu = Mutex.create ();
      outbox = Queue.create ();
      cseq = 0;
      disconnected = false;
    }
  in
  t.next_cid <- t.next_cid + 1;
  c

let push c line =
  Mutex.lock c.out_mu;
  Queue.push line c.outbox;
  Mutex.unlock c.out_mu

let output c =
  Mutex.lock c.out_mu;
  let lines = List.of_seq (Queue.to_seq c.outbox) in
  Queue.clear c.outbox;
  Mutex.unlock c.out_mu;
  lines

(* Client-level reply (the [hello] greeting, errors about frames that
   never reached a session): reserved sid "-", client's own counter. *)
let client_reply c body =
  c.cseq <- c.cseq + 1;
  push c (Proto.encode_reply { Proto.r_sid = "-"; r_seq = c.cseq; r_body = body })

(* Session-level reply: called on the owning shard only. *)
let emit sess body =
  sess.seq <- sess.seq + 1;
  sess.emit_line
    (Proto.encode_reply { Proto.r_sid = sess.sid; r_seq = sess.seq; r_body = body })

(* --- command execution (shard side) ----------------------------------- *)

let parse_opt = function
  | "none" | "0" -> Ok Instrument.O0
  | "symbol" | "sym" -> Ok Instrument.O_symbol
  | "full" | "loop" -> Ok Instrument.O_full
  | s -> Error (Printf.sprintf "unknown optimization level %S" s)

let opt_name = function
  | Instrument.O0 -> "none"
  | Instrument.O_symbol -> "symbol"
  | Instrument.O_full -> "full"

let hit_sink t sess = Sched.sink t.sched ~shard:sess.shard

let do_open t sess source strategy_s opt_s =
  match sess.session with
  | Some _ -> emit sess (Proto.Error "session already open")
  | None ->
    let strategy =
      try Ok (Strategy.of_string strategy_s)
      with Invalid_argument m -> Error m
    in
    (match (strategy, parse_opt opt_s) with
    | Error m, _ | _, Error m -> emit sess (Proto.Error m)
    | Ok strategy, Ok opt -> (
      let named =
        match source with
        | Proto.Workload w -> (
          match Workloads.Spec.find w with
          | Some spec -> Ok (w, spec.Workloads.Workload.source)
          | None -> Error (Printf.sprintf "unknown workload %S" w))
        | Proto.Program src -> Ok ("program", src)
      in
      match named with
      | Error m -> emit sess (Proto.Error m)
      | Ok (name, src) ->
        let options =
          { Instrument.default_options with strategy; opt }
        in
        let telemetry = Telemetry.create () in
        Telemetry.set_tag telemetry "source" name;
        (* Retroactive queries are first-class verbs, so every daemon
           session records through a checkpoint journal. *)
        let session =
          Session.create ~options ~telemetry ~checkpoint_every:10_000 src
        in
        let dbg = Debugger.create session in
        Debugger.set_on_event dbg (fun e ->
            if not sess.in_query then begin
              Telemetry.incr (hit_sink t sess) Telemetry.Hits_streamed;
              emit sess
                (Proto.Hit
                   {
                     name = e.Debugger.watch.Debugger.wname;
                     insn = Machine.Cpu.instr_count session.Session.cpu;
                     pc = e.Debugger.pc;
                     addr = e.Debugger.addr;
                     value = e.Debugger.value;
                     func = Option.value ~default:"?" e.Debugger.in_function;
                   })
            end);
        sess.session <- Some session;
        sess.dbg <- Some dbg;
        emit sess
          (Proto.Opened
             { name; strategy = Strategy.to_string strategy; opt = opt_name opt })))

let with_session sess f =
  match sess.session with
  | None -> emit sess (Proto.Error "session not open")
  | Some s -> f s

let with_debugger sess f =
  match sess.dbg with
  | None -> emit sess (Proto.Error "session not open")
  | Some d -> f d

let armed_reply sess name (wp : Debugger.watchpoint) =
  sess.watches <- (name, wp) :: sess.watches;
  let r = wp.Debugger.region in
  emit sess
    (Proto.Armed { name; lo = r.Region.lo; len = Region.size_bytes r })

let do_arm sess target =
  with_debugger sess (fun dbg ->
      match target with
      | Proto.Var v -> armed_reply sess v (Debugger.watch dbg v)
      | Proto.Region { lo; len } ->
        let name = Printf.sprintf "region:0x%x+%d" lo len in
        armed_reply sess name
          (Debugger.watch_addr dbg ~name ~addr:lo ~size_bytes:len ()))

let do_disarm sess name =
  with_debugger sess (fun dbg ->
      match List.assoc_opt name sess.watches with
      | None -> emit sess (Proto.Error (Printf.sprintf "no watch named %S" name))
      | Some wp ->
        Debugger.disarm dbg wp;
        sess.watches <- List.remove_assoc name sess.watches;
        emit sess (Proto.Disarmed { name }))

(* The run verb: execute [fuel] instructions in [t.slice]-sized
   quanta.  After each quantum the continuation is parked in
   [sess.cont] and a fresh step job is posted, landing behind other
   sessions' queued work on the shard — round-robin, one session
   cannot starve the loop.  [step] checks [cont] before the command
   queue, so the session's own later commands never overtake the run.
   Slicing is invisible on the wire: hits stream as they fire and
   exactly one terminal [running]/[exited] reply closes the command,
   whatever the quantum. *)
let do_run t sess repost fuel =
  with_session sess (fun s ->
      let start_insn = Machine.Cpu.instr_count s.Session.cpu in
      let executed () = Machine.Cpu.instr_count s.Session.cpu - start_insn in
      let rec slice remaining =
        match Session.run_slice ~fuel:(min t.slice remaining) s with
        | `Exited (code, output) ->
          sess.exited <- Some code;
          emit sess (Proto.Exited { code; executed = executed (); output })
        | `Running n ->
          let remaining = remaining - n in
          if remaining <= 0 then
            emit sess (Proto.Running { executed = executed () })
          else begin
            sess.cont <- Some (fun () -> slice remaining);
            repost ()
          end
      in
      slice (max 0 fuel))

(* Every shard-side command runs under this: anything the session
   machinery raises becomes a deterministic error reply instead of
   killing the shard (mirrors dbreak's handler set). *)
let guarded sess f =
  try f () with
  | Sys_error m | Invalid_argument m | Failure m -> emit sess (Proto.Error m)
  | Replay.Determinism_violation { insn; expected; actual } ->
    emit sess
      (Proto.Error
         (Printf.sprintf
            "replay diverged from the recorded run at insn %d (digest %s, \
             expected %s)"
            insn actual expected))
  | Minic.Compile.Error e ->
    emit sess
      (Proto.Error (Printf.sprintf "%s error: %s" e.Minic.Compile.phase e.message))
  | Machine.Cpu.Fault { pc; reason } ->
    emit sess (Proto.Error (Printf.sprintf "machine fault at 0x%x: %s" pc reason))
  | Machine.Cpu.Out_of_fuel { executed } ->
    emit sess (Proto.Error (Printf.sprintf "out of fuel after %d instructions" executed))
  | Debugger.No_such_variable v ->
    emit sess (Proto.Error (Printf.sprintf "no such variable: %s" v))

let resolve sess s target k =
  match Session.resolve_addr s target with
  | Some addr -> k addr
  | None ->
    emit sess
      (Proto.Error
         (Printf.sprintf
            "cannot resolve %S to a data address (expected 0x-hex, decimal, \
             or a global variable name)"
            target))

let recorded_only sess s k =
  if sess.exited = None then
    emit sess (Proto.Error "program still running: run it to completion first")
  else begin
    sess.in_query <- true;
    Fun.protect ~finally:(fun () -> sess.in_query <- false) (fun () -> k s)
  end

let wtype_name = function
  | Some wt -> Write_type.to_string wt
  | None -> "untyped"

let do_last_write sess target =
  with_session sess (fun s ->
      resolve sess s target (fun addr ->
          recorded_only sess s (fun s ->
              match Session.last_write s ~addr with
              | None -> emit sess (Proto.Never_written { target; addr })
              | Some { Session.wr_hit = h; wr_write_type } ->
                emit sess
                  (Proto.Last_write
                     {
                       target;
                       addr;
                       insn = h.Replay.h_insn;
                       pc = h.Replay.h_pc;
                       old_v = h.Replay.h_old;
                       new_v = h.Replay.h_new;
                       wtype = wtype_name wr_write_type;
                       func =
                         Option.value ~default:"?"
                           (Debugger.function_of_pc s h.Replay.h_pc);
                     }))))

let do_history sess target len =
  with_session sess (fun s ->
      resolve sess s target (fun lo ->
          recorded_only sess s (fun s ->
              let writes = Session.write_history s ~lo ~hi:(lo + max 0 len) in
              emit sess (Proto.History { count = List.length writes });
              List.iter
                (fun { Session.wr_hit = h; wr_write_type } ->
                  emit sess
                    (Proto.Write
                       {
                         insn = h.Replay.h_insn;
                         pc = h.Replay.h_pc;
                         addr = h.Replay.h_addr;
                         old_v = h.Replay.h_old;
                         new_v = h.Replay.h_new;
                         wtype = wtype_name wr_write_type;
                       }))
                writes)))

let do_travel sess insn =
  with_session sess (fun s ->
      recorded_only sess s (fun s ->
          let re = Session.time_travel s ~insn in
          emit sess
            (Proto.Traveled
               { insn; reexecuted = re; pc = Machine.Cpu.pc s.Session.cpu })))

let do_report sess =
  with_session sess (fun s ->
      emit sess (Proto.Report_json (Export.to_json_string (Session.report s))))

let do_verify sess =
  with_session sess (fun s ->
      let rep =
        Verify.run
          ~audit:(Audit.report s.Session.audit)
          s.Session.plan
      in
      emit sess
        (Proto.Verified
           {
             total = List.length rep.Verify.v_obligations;
             proved = rep.Verify.v_proved;
             refuted = rep.Verify.v_refuted;
             unknown = rep.Verify.v_unknown;
           }))

let do_close t sess =
  (match sess.session with
  | Some s -> Telemetry.absorb (hit_sink t sess) (Session.report s)
  | None -> ());
  sess.closed <- true;
  emit sess Proto.Closed;
  Mutex.lock t.mu;
  Hashtbl.remove t.sessions sess.sid;
  Mutex.unlock t.mu

let exec t sess repost cmd =
  match cmd with
  | Proto.Hello -> assert false (* answered client-side *)
  | Proto.Open { source; strategy; opt; _ } -> do_open t sess source strategy opt
  | Proto.Arm { target; _ } -> do_arm sess target
  | Proto.Disarm { name; _ } -> do_disarm sess name
  | Proto.Run { fuel; _ } -> do_run t sess repost fuel
  | Proto.Query_last_write { target; _ } -> do_last_write sess target
  | Proto.Query_history { target; len; _ } -> do_history sess target len
  | Proto.Travel { insn; _ } -> do_travel sess insn
  | Proto.Report _ -> do_report sess
  | Proto.Verify _ -> do_verify sess
  | Proto.Close _ -> do_close t sess

(* One scheduler job = one step of one session: resume a parked run
   continuation if there is one, otherwise execute the next queued
   command.  Every enqueue (submit or continuation park) posts exactly
   one step, so steps and work items balance; all session state except
   [cmdq] is touched only here, on the owning shard. *)
let rec step t sess =
  if sess.closed then begin
    sess.cont <- None;
    match take_cmd sess with
    | Some _ -> emit sess (Proto.Error "session closed")
    | None -> ()
  end
  else
    match sess.cont with
    | Some k ->
      sess.cont <- None;
      guarded sess k
    | None -> (
      match take_cmd sess with
      | Some cmd -> guarded sess (fun () -> exec t sess (repost t sess) cmd)
      | None -> ())

and repost t sess () = Sched.post t.sched ~key:sess.sid (fun () -> step t sess)

and take_cmd sess =
  Mutex.lock sess.cmd_mu;
  let cmd = Queue.take_opt sess.cmdq in
  Mutex.unlock sess.cmd_mu;
  cmd

let enqueue t sess cmd =
  Mutex.lock sess.cmd_mu;
  Queue.push cmd sess.cmdq;
  Mutex.unlock sess.cmd_mu;
  repost t sess ()

(* --- routing (main-thread side) --------------------------------------- *)

let submit t c line =
  match Proto.decode_command line with
  | Error m -> client_reply c (Proto.Error m)
  | Ok cmd -> (
    Telemetry.incr t.reg Telemetry.Commands_served;
    match cmd with
    | Proto.Hello -> client_reply c Proto.Hello_ok
    | _ -> (
      let sid = Option.get (Proto.command_sid cmd) in
      let is_open = match cmd with Proto.Open _ -> true | _ -> false in
      Mutex.lock t.mu;
      let existing = Hashtbl.find_opt t.sessions sid in
      let route =
        match (existing, is_open) with
        | Some _, true ->
          Error (Printf.sprintf "session %S already exists" sid)
        | Some sess, false ->
          if sess.owner <> c.cid then
            Error (Printf.sprintf "session %S belongs to another client" sid)
          else Ok sess
        | None, true ->
          if sid = "-" || sid = "" then
            Error "session id must be a non-empty token other than \"-\""
          else begin
            let sess =
              {
                sid;
                shard = Sched.shard_of t.sched sid;
                owner = c.cid;
                emit_line = push c;
                cmd_mu = Mutex.create ();
                cmdq = Queue.create ();
                cont = None;
                seq = 0;
                session = None;
                dbg = None;
                watches = [];
                exited = None;
                closed = false;
                in_query = false;
              }
            in
            Hashtbl.replace t.sessions sid sess;
            Ok sess
          end
        | None, false -> Error (Printf.sprintf "unknown session %S" sid)
      in
      Mutex.unlock t.mu;
      match route with
      | Error m -> client_reply c (Proto.Error m)
      | Ok sess -> enqueue t sess cmd))

(* Close every session a disconnecting client still owns (absorbing
   their telemetry); its outbox is simply never flushed again. *)
let close_client t c =
  if not c.disconnected then begin
    c.disconnected <- true;
    Mutex.lock t.mu;
    let owned =
      Hashtbl.fold
        (fun _ sess acc -> if sess.owner = c.cid then sess :: acc else acc)
        t.sessions []
    in
    Mutex.unlock t.mu;
    (* Through the command queue, so an in-flight sliced run finishes
       (and its telemetry is complete) before the close absorbs it. *)
    List.iter (fun sess -> enqueue t sess (Proto.Close { sid = sess.sid })) owned
  end

let drain t = Sched.drain t.sched

let sessions_open t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.mu;
  n

(* Aggregate view: daemon registry + shard sinks (closed sessions) +
   every live session's report.  Reading a live session's registry
   while its shard is mid-slice is a monitoring read (plain int
   loads); quiescent reads (after {!drain}) are exact and
   shard-count-independent. *)
let merged_report t =
  Telemetry.set t.reg Telemetry.Sessions_open (sessions_open t);
  Mutex.lock t.mu;
  let live =
    Hashtbl.fold
      (fun _ sess acc ->
        match sess.session with
        | Some s when not sess.closed -> Session.report s :: acc
        | _ -> acc)
      t.sessions []
  in
  Mutex.unlock t.mu;
  Telemetry.merge
    (Telemetry.report t.reg :: Sched.merged_report t.sched :: live)

let metrics_body t = Export.to_prometheus (merged_report t)

let shutdown t = Sched.shutdown t.sched

(* --- wire listener ----------------------------------------------------- *)

(* Same nonblocking-accept discipline as {!Scrape}, but connections are
   long-lived: each one accumulates bytes into a line buffer, feeds
   complete frames to {!submit}, and flushes its client's outbox with
   nonblocking writes (partial writes are carried to the next poll). *)

type conn = {
  fd : Unix.file_descr;
  cl : client;
  rbuf : Buffer.t;
  mutable wpend : string;  (* bytes accepted for write, not yet sent *)
  mutable eof : bool;
}

type server = {
  engine : t;
  lsock : Unix.file_descr;
  lport : int;
  mutable conns : conn list;
  mutable sclosed : bool;
}

let listen ?(host = Unix.inet_addr_loopback) ?(backlog = 64) t ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (host, port));
     Unix.listen sock backlog;
     Unix.set_nonblock sock
   with e ->
     Unix.close sock;
     raise e);
  let lport =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { engine = t; lsock = sock; lport; conns = []; sclosed = false }

let server_port srv = srv.lport

let accept_pending srv =
  let rec go () =
    match Unix.accept srv.lsock with
    | fd, _ ->
      Unix.set_nonblock fd;
      srv.conns <-
        { fd; cl = client srv.engine; rbuf = Buffer.create 256; wpend = ""; eof = false }
        :: srv.conns;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* Split [conn.rbuf] at newlines; unterminated tails stay buffered. *)
let feed_lines srv conn =
  let data = Buffer.contents conn.rbuf in
  Buffer.clear conn.rbuf;
  let rec go start =
    match String.index_from_opt data start '\n' with
    | None ->
      if start < String.length data then
        Buffer.add_substring conn.rbuf data start (String.length data - start)
    | Some i ->
      let line =
        let l = String.sub data start (i - start) in
        if l <> "" && l.[String.length l - 1] = '\r' then
          String.sub l 0 (String.length l - 1)
        else l
      in
      if line <> "" then submit srv.engine conn.cl line;
      go (i + 1)
  in
  go 0

let read_conn srv conn =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> conn.eof <- true
    | k ->
      Buffer.add_subbytes conn.rbuf buf 0 k;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> conn.eof <- true
  in
  go ();
  feed_lines srv conn

let flush_conn conn =
  let fresh = output conn.cl in
  if fresh <> [] then
    conn.wpend <-
      conn.wpend ^ String.concat "" (List.map (fun l -> l ^ "\n") fresh);
  if conn.wpend <> "" then begin
    match
      Unix.write_substring conn.fd conn.wpend 0 (String.length conn.wpend)
    with
    | k -> conn.wpend <- String.sub conn.wpend k (String.length conn.wpend - k)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ ->
      (* Peer reset: drop the pending bytes; the EOF path below reaps
         the connection and closes its sessions. *)
      conn.wpend <- "";
      conn.eof <- true
  end

let server_poll srv =
  if not srv.sclosed then begin
    accept_pending srv;
    List.iter
      (fun conn ->
        if not conn.eof then read_conn srv conn;
        flush_conn conn)
      srv.conns;
    let live, dead =
      List.partition (fun c -> not c.eof || c.wpend <> "") srv.conns
    in
    srv.conns <- live;
    List.iter
      (fun conn ->
        close_client srv.engine conn.cl;
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ());
        try Unix.close conn.fd with _ -> ())
      dead
  end

let server_fds srv =
  srv.lsock :: List.map (fun c -> c.fd) srv.conns

let serve_for srv ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    let now = Unix.gettimeofday () in
    if now < deadline && not srv.sclosed then begin
      (try
         ignore
           (Unix.select (server_fds srv) [] [] (min 0.05 (deadline -. now)))
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      server_poll srv;
      go ()
    end
  in
  go ()

let server_close srv =
  if not srv.sclosed then begin
    server_poll srv;
    srv.sclosed <- true;
    List.iter
      (fun conn ->
        close_client srv.engine conn.cl;
        try Unix.close conn.fd with _ -> ())
      srv.conns;
    srv.conns <- [];
    try Unix.close srv.lsock with _ -> ()
  end
