(* Minimal poll-based metrics endpoint.  One nonblocking listening
   socket; [poll] drains whatever connections are pending, answers
   each with one HTTP/1.0 response, and returns — no threads, no
   event loop, no dependencies beyond Unix.  The embedding run calls
   [poll] from a hook it already owns (the dispatch-loop sampler), so
   a scrape is answered within one sampling interval.

   This is deliberately the smallest wire skeleton that Prometheus
   (or curl) can talk to; the dbreakd service daemon grows from here. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  metrics : unit -> string;
  mutable served : int;
  mutable closed : bool;
}

let create ?(host = Unix.inet_addr_loopback) ?(backlog = 16) ~port ~metrics ()
    =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (host, port));
     Unix.listen sock backlog;
     Unix.set_nonblock sock
   with e ->
     Unix.close sock;
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sock; port; metrics; served = 0; closed = false }

let port t = t.port
let served t = t.served

let index_body t =
  Printf.sprintf
    "dbp scrape endpoint\n\nGET /metrics  Prometheus exposition (port %d)\n"
    t.port

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let respond t conn =
  (* Read until the blank line ending the request head, the bounded
     buffer fills, or an overall deadline passes: leaving request bytes
     unread would turn the close below into a reset that can discard
     the in-flight response, but an attacker must not be able to hold
     the simulated run hostage either.  A head that never completes —
     oversized (> buffer), stalled mid-line (slow-loris: SO_RCVTIMEO
     fires), or out of deadline — is answered 400 and never dispatched;
     a clean EOF after a complete first line (sloppy clients that skip
     the blank line) is still served. *)
  let buf = Bytes.create 2048 in
  let filled = ref 0 in
  let eof = ref false in
  let stalled = ref false in
  let deadline = Unix.gettimeofday () +. 1.0 in
  let head_done () =
    let s = Bytes.sub_string buf 0 !filled in
    let rec find i =
      i + 4 <= String.length s
      && (String.sub s i 4 = "\r\n\r\n" || find (i + 1))
    in
    find 0
  in
  (try
     while
       (not (head_done ()))
       && (not !eof)
       && !filled < Bytes.length buf
       && Unix.gettimeofday () < deadline
     do
       let k = Unix.read conn buf !filled (Bytes.length buf - !filled) in
       if k = 0 then eof := true else filled := !filled + k
     done
   with _ -> stalled := true);
  let request = Bytes.sub_string buf 0 !filled in
  let first_line =
    match String.index_opt request '\r' with
    | Some i -> String.sub request 0 i
    | None -> (
      match String.index_opt request '\n' with
      | Some i -> String.sub request 0 i
      | None -> request)
  in
  let complete =
    (* Dispatchable: terminated head, or clean EOF with at least a full
       first line.  Everything else (buffer cap hit with no terminator,
       read timeout, deadline) is a malformed or hostile request. *)
    head_done ()
    || (!eof && (not !stalled) && String.length first_line < !filled)
  in
  let reply =
    match
      if complete then String.split_on_char ' ' first_line else [ "" ]
    with
    | [ "GET"; "/metrics"; _ ] ->
      http_response ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (t.metrics ())
    | [ "GET"; ("/" | "/index.html"); _ ] ->
      http_response ~status:"200 OK" ~content_type:"text/plain" (index_body t)
    | [ "GET"; _; _ ] ->
      http_response ~status:"404 Not Found" ~content_type:"text/plain"
        "not found\n"
    | _ ->
      http_response ~status:"400 Bad Request" ~content_type:"text/plain"
        "bad request\n"
  in
  let len = String.length reply in
  let sent = ref 0 in
  (try
     while !sent < len do
       sent := !sent + Unix.write_substring conn reply !sent (len - !sent)
     done;
     (* Lingering close: announce end-of-response, then wait (bounded
        by the receive timeout) for the peer to finish reading — a
        straight close with anything unread would reset the
        connection mid-response. *)
     Unix.shutdown conn Unix.SHUTDOWN_SEND;
     let scratch = Bytes.create 256 in
     while Unix.read conn scratch 0 (Bytes.length scratch) > 0 do
       ()
     done
   with _ -> ());
  t.served <- t.served + 1

let poll ?(max_requests = 16) t =
  if t.closed then 0
  else begin
    let handled = ref 0 in
    (try
       while !handled < max_requests do
         let conn, _ = Unix.accept t.sock in
         (* Bound the per-request read so a stalled client cannot hang
            the simulated run for more than a beat. *)
         Unix.clear_nonblock conn;
         (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO 0.5 with _ -> ());
         Fun.protect
           ~finally:(fun () -> try Unix.close conn with _ -> ())
           (fun () -> respond t conn);
         incr handled
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | Unix.Unix_error _ -> ());
    !handled
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.sock with _ -> ()
  end

(* Convenience: block for up to [seconds] answering requests — the
   post-run linger dbreak offers so one-shot CI scrapes have a window
   to land after the simulated program exits. *)
let serve_for t ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    let now = Unix.gettimeofday () in
    if now < deadline && not t.closed then begin
      (try
         let r, _, _ =
           Unix.select [ t.sock ] [] [] (min 0.2 (deadline -. now))
         in
         if r <> [] then ignore (poll t)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()
