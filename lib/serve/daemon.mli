(** dbreakd's engine: concurrent debug sessions multiplexed over
    dbp-wire/1, sharded across domains by {!Sched}.

    The engine separates frame {e routing} (main thread: parse, session
    table, client-level replies under sid ["-"]) from command
    {e execution} (the session's shard domain, in arrival order — which
    is what makes each session's reply stream, sequence numbers and
    telemetry independent of the shard count).  Long [run] commands are
    executed in fuel slices and re-posted behind other sessions' work,
    so one session cannot starve a shard.

    Two front ends sit on top: the in-process {!client}/{!submit}/
    {!output} API (tests, bench loopback driver) and the TCP listener
    ({!listen}/{!server_poll}/{!serve_for}). *)

type t
(** The engine: scheduler, session table, daemon telemetry registry. *)

val default_slice : int
(** Fairness quantum (instructions per [run] slice): 50k. *)

val create : ?shards:int -> ?slice:int -> unit -> t
(** Spawn the shard pool.  [slice] overrides {!default_slice}. *)

val shards : t -> int

(** {1 In-process clients} *)

type client
(** One command source with a private reply outbox.  Replies to frames
    that never reached a session (the [hello] greeting, parse errors,
    unknown-session errors) arrive under the reserved sid ["-"] with a
    per-client sequence; session replies carry the session's own
    monotone sequence. *)

val client : t -> client

val submit : t -> client -> string -> unit
(** Route one frame (a line, no terminator).  Client-level replies are
    pushed synchronously; session commands are posted to the session's
    shard and their replies arrive in the outbox asynchronously. *)

val output : client -> string list
(** Drain the client's outbox (encoded reply lines, in emission
    order). *)

val close_client : t -> client -> unit
(** Close every session the client still owns (absorbing their
    telemetry into the shard sinks), as on TCP disconnect. *)

val drain : t -> unit
(** Block until all posted commands (and re-posted run slices) have
    executed.  After [drain], outboxes and {!merged_report} are
    quiescent and deterministic. *)

val sessions_open : t -> int

val merged_report : t -> Telemetry.report
(** Daemon registry (commands served, sessions-open gauge) + shard
    sinks (closed sessions) + every live session's report, folded with
    the commutative {!Telemetry.merge} — quiescent reads are
    byte-identical across shard counts. *)

val metrics_body : t -> string
(** {!merged_report} rendered for [GET /metrics]. *)

val shutdown : t -> unit
(** Drain and join the shard domains.  Idempotent. *)

(** {1 TCP front end} *)

type server

val listen :
  ?host:Unix.inet_addr -> ?backlog:int -> t -> port:int -> unit -> server
(** Bind a nonblocking listener (port 0 for ephemeral — read it back
    with {!server_port}).  Loopback by default. *)

val server_port : server -> int

val server_poll : server -> unit
(** One nonblocking pass: accept pending connections, read available
    bytes (feeding complete frames to {!submit}), flush outboxes
    (partial writes carry over), reap disconnected peers (closing
    their sessions). *)

val server_fds : server -> Unix.file_descr list
(** Listener + connection fds, for an external [select] loop. *)

val serve_for : server -> seconds:float -> unit
(** Select-driven {!server_poll} loop for a bounded duration. *)

val server_close : server -> unit
(** Final poll, then close every connection (closing its sessions) and
    the listener.  Does not {!shutdown} the engine. *)
