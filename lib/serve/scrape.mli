(** Minimal live-metrics scrape endpoint.

    A single nonblocking listening socket answering [GET /metrics] with
    whatever the [metrics] callback renders (normally
    [Export.to_prometheus] over a live session report).  Poll-based and
    single-threaded: nothing happens between {!poll} calls, so the
    embedding run drives it from a hook it already owns — dbreak wires
    {!poll} into the time-series sampler, bounding scrape latency to
    one sampling interval.  No dependencies beyond [Unix]; this is the
    wire-endpoint skeleton the dbreakd service daemon grows from.

    Unknown paths get 404, [/] a small text index, malformed requests
    400; every response closes the connection.  A request head that
    never completes is also 400, never dispatched: the head is capped
    at 2 KiB, each read is bounded by a 0.5 s receive timeout, and the
    whole head gets at most 1 s — so an oversized request line or a
    slow-loris drip cannot hold the embedding run hostage, while
    sloppy clients that close after the request line (no terminating
    blank line) are still served. *)

type t

val create :
  ?host:Unix.inet_addr ->
  ?backlog:int ->
  port:int ->
  metrics:(unit -> string) ->
  unit ->
  t
(** Bind and listen ([host] defaults to loopback).  [port = 0] binds an
    ephemeral port — read it back with {!port}.  The [metrics] callback
    runs once per [/metrics] request, on the {!poll}er's stack.
    @raise Unix.Unix_error when the bind fails (e.g. port in use). *)

val port : t -> int

val served : t -> int
(** Requests answered so far. *)

val poll : ?max_requests:int -> t -> int
(** Accept and answer every pending connection (up to [max_requests],
    default 16); returns the number handled.  Never blocks waiting for
    new connections; a connected client gets at most 0.5 s to deliver
    its request line. *)

val serve_for : t -> seconds:float -> unit
(** Block answering requests until [seconds] elapse — the post-run
    linger window for one-shot scrapes (CI curl). *)

val close : t -> unit
(** Close the listening socket; further {!poll}s answer nothing.
    Idempotent. *)
