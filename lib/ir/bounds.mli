(** Bound propagation (§4.3.2, Figure 4).

    Every SSA variable is tagged with a lower and upper bound, each a
    symbolic expression over constants, label addresses and variables
    defined outside the current loop, classified on the paper's
    usefulness lattice [Lc > Lli > Lm > La > unbounded]:
    - [Lc] — derived from constants only;
    - [Lli] — from loop invariants and constants;
    - [Lm] — from a monotonic variable's loop-entry value;
    - [La] — from assert definitions (branch conditions).

    The fixpoint only ever {e raises} a bound to a more useful level
    (the [max] of Figure 4), so monotonic-group seeds persist.  After
    propagation, each store in the loop is classified: {!Invariant}
    (provably the same address every iteration — movable to the
    pre-header as one standard check), {!Range} (bounded — movable as a
    pre-header range check), or {!Keep}. *)

type level = La | Lm | Lli | Lc

val level_rank : level -> int

type bexpr =
  | Bconst of int
  | Blab of string * int
  | Bvar of Ssa.var
  | Badd of bexpr * bexpr
  | Bsub of bexpr * bexpr
  | Bmul of bexpr * int
  | Bshl of bexpr * int

val normalize : bexpr -> bexpr
(** Canonical normal form.  Every constructor is linear, so a bound
    expression is a linear combination of atoms (SSA variables and
    label addresses) plus a constant, under wrapping 32-bit
    arithmetic; [normalize] folds constants, distributes [*c]/[<<c],
    and orders commutative sums deterministically.  Idempotent; two
    expressions denote the same Word-valued function of their atoms
    iff their normal forms are structurally equal. *)

val bexpr_equal : bexpr -> bexpr -> bool
(** Structural fast path, falling back to comparing {!normalize}d
    forms — i.e. semantic equality of the linear combinations. *)

val bexpr_vars : bexpr -> Ssa.var list

type bound = Unbounded | Bound of { level : level; expr : bexpr }

type bounds = { lo : bound; hi : bound }

module VarTbl : Hashtbl.S with type key = Ssa.var

type env = bounds VarTbl.t

val lookup : env -> Ssa.var -> bounds

type direction = Increasing | Decreasing

type group = { phi_var : Ssa.var; init : Ssa.var; direction : direction }

val monotonic_groups : Ssa.t -> Loops.loop -> group list
(** Header phis whose back-edge chains add a constant of uniform sign
    each iteration (following copies and asserts). *)

val propagate : Ssa.t -> Loops.loop -> env * group list
(** Seed invariants and monotonic groups, then run the Figure 4
    worklist to fixpoint. *)

type disposition =
  | Keep
  | Invariant of { expr : bexpr; level : level }
      (** [level]: the usefulness level the invariant address bound was
          derived at (the min of its lo/hi levels) *)
  | Range of { lo : bexpr; hi : bexpr; lo_level : level; hi_level : level }

type store_decision = {
  origin : int;   (** assembly item index of the store *)
  block : int;
  width : Sparc.Insn.width;
  disposition : disposition;
}

val dispositions : Ssa.t -> Loops.loop -> env -> store_decision list
(** Classify every store inside the loop.  Expressions in non-[Keep]
    dispositions are evaluable in the loop pre-header: all their
    variables carry the version live at the header's entry. *)

val evaluable : Ssa.t -> Loops.loop -> bexpr -> bool

(** {2 Pretty-printers}

    Canonical renderings shared by the loop optimizer's debug strings,
    the audit journal and [dbreak --explain]. *)

val level_name : level -> string
(** ["La"] / ["Lm"] / ["Lli"] / ["Lc"]. *)

val pp_level : Format.formatter -> level -> unit

val pp_bexpr : Format.formatter -> bexpr -> unit

val pp_bound : Format.formatter -> bound -> unit
(** [expr@level], or [⊥] for [Unbounded]. *)

val pp_bounds : Format.formatter -> bounds -> unit
(** [[lo, hi]] via {!pp_bound}. *)

val pp_disposition : Format.formatter -> disposition -> unit

val env_bindings : env -> (Ssa.var * bounds) list
(** The fixpoint environment as a deterministically ordered listing
    (sorted by rendered variable name, then version) — hash-order
    independent, for the audit journal's lattice section. *)
