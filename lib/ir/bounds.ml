open Sparc

(* The paper's bound lattice (§4.3.2), ordered by usefulness:
   constants > loop invariants > monotonic > assert-derived > unknown. *)
type level = La | Lm | Lli | Lc

let level_rank = function La -> 1 | Lm -> 2 | Lli -> 3 | Lc -> 4

let min_level a b = if level_rank a <= level_rank b then a else b

type bexpr =
  | Bconst of int
  | Blab of string * int
  | Bvar of Ssa.var
  | Badd of bexpr * bexpr
  | Bsub of bexpr * bexpr
  | Bmul of bexpr * int
  | Bshl of bexpr * int

let rec bexpr_depth = function
  | Bconst _ | Blab _ | Bvar _ -> 1
  | Badd (a, b) | Bsub (a, b) -> 1 + max (bexpr_depth a) (bexpr_depth b)
  | Bmul (a, _) | Bshl (a, _) -> 1 + bexpr_depth a

let max_bexpr_depth = 16

let rec struct_equal a b =
  match a, b with
  | Bconst x, Bconst y -> x = y
  | Blab (l1, o1), Blab (l2, o2) -> String.equal l1 l2 && o1 = o2
  | Bvar v1, Bvar v2 -> Ssa.var_equal v1 v2
  | Badd (x1, y1), Badd (x2, y2) | Bsub (x1, y1), Bsub (x2, y2) ->
    struct_equal x1 x2 && struct_equal y1 y2
  | Bmul (x1, c1), Bmul (x2, c2) | Bshl (x1, c1), Bshl (x2, c2) ->
    struct_equal x1 x2 && c1 = c2
  | (Bconst _ | Blab _ | Bvar _ | Badd _ | Bsub _ | Bmul _ | Bshl _), _ -> false

(* --- canonical normal form ---------------------------------------------------

   Every [bexpr] constructor is linear in its sub-expression, so any
   bound expression is a linear combination  Σ cᵢ·atomᵢ + k  of atoms
   (SSA variables and label addresses) under the machine's wrapping
   32-bit arithmetic.  [normalize] computes that combination exactly —
   constant folding, commutativity/associativity of [+], distribution
   of [*c] and [<<c] — and re-renders it in a fixed shape, so two
   expressions are semantically equal (as Word-valued functions of
   their atoms) iff their normal forms are structurally equal. *)

type atom = Alab of string | Avar of Ssa.var

let atom_compare a b =
  match a, b with
  | Alab l1, Alab l2 -> String.compare l1 l2
  | Alab _, Avar _ -> -1
  | Avar _, Alab _ -> 1
  | Avar v1, Avar v2 -> (
    let tie () = compare v1.Ssa.version v2.Ssa.version in
    match v1.Ssa.name, v2.Ssa.name with
    | Tac.Machine r1, Tac.Machine r2 -> (
      match compare (Reg.index r1) (Reg.index r2) with 0 -> tie () | c -> c)
    | Tac.Machine _, Tac.Pseudo _ -> -1
    | Tac.Pseudo _, Tac.Machine _ -> 1
    | Tac.Pseudo s1, Tac.Pseudo s2 -> (
      match String.compare s1 s2 with 0 -> tie () | c -> c))

(* Accumulate [coeff * e] into (terms, const).  A label's offset is a
   constant; [x << c] is [x * 2^c] under wrapping arithmetic. *)
let rec linearize coeff e (terms, const) =
  match e with
  | Bconst c -> (terms, Word.add const (Word.mul coeff c))
  | Blab (l, o) -> ((Alab l, coeff) :: terms, Word.add const (Word.mul coeff o))
  | Bvar v -> ((Avar v, coeff) :: terms, const)
  | Badd (a, b) -> linearize coeff b (linearize coeff a (terms, const))
  | Bsub (a, b) -> linearize (Word.sub 0 coeff) b (linearize coeff a (terms, const))
  | Bmul (a, c) -> linearize (Word.mul coeff c) a (terms, const)
  | Bshl (a, c) -> linearize (Word.mul coeff (Word.sll 1 c)) a (terms, const)

let normalize e =
  let terms, const = linearize 1 e ([], 0) in
  let merged =
    List.sort (fun (a, _) (b, _) -> atom_compare a b) terms
    |> List.fold_left
         (fun acc (a, c) ->
           match acc with
           | (a', c') :: rest when atom_compare a a' = 0 -> (a', Word.add c' c) :: rest
           | _ -> (a, c) :: acc)
         []
    |> List.rev
    |> List.filter (fun (_, c) -> c <> 0)
  in
  let atom_expr = function Alab l -> Blab (l, 0) | Avar v -> Bvar v in
  let term (a, c) = if c = 1 then atom_expr a else Bmul (atom_expr a, c) in
  match merged with
  | [] -> Bconst const
  | t0 :: rest ->
    let sum = List.fold_left (fun acc t -> Badd (acc, term t)) (term t0) rest in
    if const = 0 then sum else Badd (sum, Bconst const)

let bexpr_equal a b =
  struct_equal a b || struct_equal (normalize a) (normalize b)

let rec bexpr_vars = function
  | Bconst _ | Blab _ -> []
  | Bvar v -> [ v ]
  | Badd (a, b) | Bsub (a, b) -> bexpr_vars a @ bexpr_vars b
  | Bmul (a, _) | Bshl (a, _) -> bexpr_vars a

(* Smart constructors with constant folding. *)
let badd a b =
  match a, b with
  | Bconst x, Bconst y -> Bconst (Word.add x y)
  | Blab (l, o), Bconst c | Bconst c, Blab (l, o) -> Blab (l, o + c)
  | a, Bconst 0 | Bconst 0, a -> a
  | a, b -> Badd (a, b)

let bsub a b =
  match a, b with
  | Bconst x, Bconst y -> Bconst (Word.sub x y)
  | Blab (l, o), Bconst c -> Blab (l, o - c)
  | a, Bconst 0 -> a
  | a, b -> Bsub (a, b)

let bmul a c =
  match a with
  | Bconst x -> Bconst (Word.mul x c)
  | a -> if c = 1 then a else Bmul (a, c)

let bshl a c =
  match a with
  | Bconst x -> Bconst (Word.sll x c)
  | a -> if c = 0 then a else Bshl (a, c)

type bound = Unbounded | Bound of { level : level; expr : bexpr }

type bounds = { lo : bound; hi : bound }

let bot = { lo = Unbounded; hi = Unbounded }

let bound_equal a b =
  match a, b with
  | Unbounded, Unbounded -> true
  | Bound x, Bound y -> x.level = y.level && bexpr_equal x.expr y.expr
  | (Unbounded | Bound _), _ -> false

let bounds_equal a b = bound_equal a.lo b.lo && bound_equal a.hi b.hi

(* "More useful" comparison: keep the existing bound unless the new one
   has a strictly higher level (Figure 4's max operator). *)
let max_bound current candidate =
  match current, candidate with
  | Unbounded, c -> c
  | c, Unbounded -> c
  | Bound a, Bound b -> if level_rank b.level > level_rank a.level then candidate else current

let cap_level cap = function
  | Unbounded -> Unbounded
  | Bound b -> Bound { b with level = min_level cap b.level }

let guard_depth = function
  | Unbounded -> Unbounded
  | Bound b -> if bexpr_depth b.expr > max_bexpr_depth then Unbounded else Bound b

(* Arithmetic on bounds: level = min of operand levels. *)
let bin_bound f a b =
  match a, b with
  | Bound x, Bound y ->
    guard_depth (Bound { level = min_level x.level y.level; expr = f x.expr y.expr })
  | (Unbounded | Bound _), _ -> Unbounded

let scale_bound c = function
  | Unbounded -> Unbounded
  | Bound x -> guard_depth (Bound { x with expr = bmul x.expr c })

let shift_bound c = function
  | Unbounded -> Unbounded
  | Bound x -> guard_depth (Bound { x with expr = bshl x.expr c })

let const_bound v = Bound { level = Lc; expr = Bconst v }

(* --- variable bound store -------------------------------------------------- *)

module VarTbl = Hashtbl.Make (struct
  type t = Ssa.var

  let equal = Ssa.var_equal

  let hash (v : Ssa.var) =
    Hashtbl.hash
      (match v.name with
      | Tac.Machine r -> (0, Sparc.Reg.index r, v.version)
      | Tac.Pseudo s -> (1, Hashtbl.hash s, v.version))
end)

type env = bounds VarTbl.t

let lookup (env : env) v = Option.value ~default:bot (VarTbl.find_opt env v)

let operand_bounds env = function
  | Ssa.Oimm i -> { lo = const_bound i; hi = const_bound i }
  | Ssa.Olab (l, o) ->
    let b = Bound { level = Lc; expr = Blab (l, o) } in
    { lo = b; hi = b }
  | Ssa.Ovar v -> lookup env v

(* Bounds of a binary operation (the paper's ComputeLower/UpperBound). *)
let bin_bounds alu a b =
  let const_of bounds =
    match bounds.lo, bounds.hi with
    | Bound { expr = Bconst x; _ }, Bound { expr = Bconst y; _ } when x = y -> Some x
    | _, _ -> None
  in
  match alu with
  | Insn.Add ->
    { lo = bin_bound badd a.lo b.lo; hi = bin_bound badd a.hi b.hi }
  | Insn.Sub ->
    { lo = bin_bound bsub a.lo b.hi; hi = bin_bound bsub a.hi b.lo }
  | Insn.Smul | Insn.Umul -> (
    match const_of a, const_of b with
    | Some x, Some y -> let v = Word.mul x y in { lo = const_bound v; hi = const_bound v }
    | Some c, None when c >= 0 -> { lo = scale_bound c b.lo; hi = scale_bound c b.hi }
    | Some c, None -> { lo = scale_bound c b.hi; hi = scale_bound c b.lo }
    | None, Some c when c >= 0 -> { lo = scale_bound c a.lo; hi = scale_bound c a.hi }
    | None, Some c -> { lo = scale_bound c a.hi; hi = scale_bound c a.lo }
    | None, None -> bot)
  | Insn.Sll -> (
    match const_of b with
    | Some c when c >= 0 && c < 31 ->
      { lo = shift_bound c a.lo; hi = shift_bound c a.hi }
    | Some _ | None -> bot)
  | Insn.And -> (
    (* x & c with c >= 0 lies in [0, c]. *)
    match const_of a, const_of b with
    | Some x, Some y -> let v = Word.logand x y in { lo = const_bound v; hi = const_bound v }
    | _, Some c when c >= 0 -> { lo = const_bound 0; hi = const_bound c }
    | Some c, _ when c >= 0 -> { lo = const_bound 0; hi = const_bound c }
    | _, _ -> bot)
  | Insn.Or | Insn.Xor | Insn.Andn | Insn.Orn | Insn.Xnor | Insn.Srl
  | Insn.Sra | Insn.Sdiv | Insn.Udiv -> (
    match const_of a, const_of b with
    | Some x, Some y -> (
      let f =
        match alu with
        | Insn.Or -> Some Word.logor
        | Insn.Xor -> Some Word.logxor
        | Insn.Srl -> Some Word.srl
        | Insn.Sra -> Some Word.sra
        | Insn.Sdiv -> if y = 0 then None else Some Word.sdiv
        | Insn.Udiv -> if y = 0 then None else Some Word.udiv
        | _ -> None
      in
      match f with
      | Some f -> let v = f x y in { lo = const_bound v; hi = const_bound v }
      | None -> bot)
    | _, _ -> bot)

let refine_assert env src_bounds rel bound_op =
  let b = operand_bounds env bound_op in
  let minus_one = function
    | Unbounded -> Unbounded
    | Bound x -> guard_depth (Bound { x with expr = badd x.expr (Bconst (-1)) })
  in
  let plus_one = function
    | Unbounded -> Unbounded
    | Bound x -> guard_depth (Bound { x with expr = badd x.expr (Bconst 1) })
  in
  let cap = cap_level La in
  let lo_cand, hi_cand =
    match (rel : Tac.relop) with
    | Tac.Rle -> (Unbounded, cap b.hi)
    | Tac.Rlt -> (Unbounded, cap (minus_one b.hi))
    | Tac.Rge -> (cap b.lo, Unbounded)
    | Tac.Rgt -> (cap (plus_one b.lo), Unbounded)
    | Tac.Req -> (cap b.lo, cap b.hi)
  in
  {
    lo = max_bound src_bounds.lo lo_cand;
    hi = max_bound src_bounds.hi hi_cand;
  }

(* --- monotonic groups (§4.3) ----------------------------------------------- *)

type direction = Increasing | Decreasing

type group = { phi_var : Ssa.var; init : Ssa.var; direction : direction }

(* Constant value of a variable, following copies — naive codegen
   materializes literals in registers, so increments read "add r, rc"
   with rc := mov #c. *)
let rec const_of_var ssa depth v =
  if depth > 8 then None
  else
    match Ssa.def_site ssa v with
    | Some (Ssa.Dinstr (_, Ssa.Def { rhs = Ssa.Mov (Ssa.Oimm c); _ })) -> Some c
    | Some (Ssa.Dinstr (_, Ssa.Def { rhs = Ssa.Mov (Ssa.Ovar w); _ })) ->
      const_of_var ssa (depth + 1) w
    | Some (Ssa.Dinstr (_, Ssa.Assert { src; _ })) -> const_of_var ssa (depth + 1) src
    | Some (Ssa.Dphi _) | Some (Ssa.Dinstr _) | Some Ssa.Dentry | None -> None

let const_of_operand ssa = function
  | Ssa.Oimm c -> Some c
  | Ssa.Ovar v -> const_of_var ssa 0 v
  | Ssa.Olab _ -> None

(* Follow copies/asserts/adds from [v] back to [target]; returns the
   accumulated constant delta if the chain closes. *)
let rec chase ssa ~target ~depth v acc =
  if depth > 32 then None
  else if Ssa.var_equal v target then Some acc
  else
    match Ssa.def_site ssa v with
    | Some (Ssa.Dinstr (_, Ssa.Def { rhs = Ssa.Mov (Ssa.Ovar w); _ })) ->
      chase ssa ~target ~depth:(depth + 1) w acc
    | Some (Ssa.Dinstr (_, Ssa.Assert { src; _ })) ->
      chase ssa ~target ~depth:(depth + 1) src acc
    | Some (Ssa.Dinstr (_, Ssa.Def { rhs = Ssa.Bin (Insn.Add, a, b); _ })) -> (
      match a, const_of_operand ssa b with
      | Ssa.Ovar w, Some c -> chase ssa ~target ~depth:(depth + 1) w (acc + c)
      | _, _ -> (
        match const_of_operand ssa a, b with
        | Some c, Ssa.Ovar w -> chase ssa ~target ~depth:(depth + 1) w (acc + c)
        | _, _ -> None))
    | Some (Ssa.Dinstr (_, Ssa.Def { rhs = Ssa.Bin (Insn.Sub, a, b); _ })) -> (
      match a, const_of_operand ssa b with
      | Ssa.Ovar w, Some c -> chase ssa ~target ~depth:(depth + 1) w (acc - c)
      | _, _ -> None)
    | Some (Ssa.Dphi _) | Some (Ssa.Dinstr _) | Some Ssa.Dentry | None -> None

let monotonic_groups (ssa : Ssa.t) (loop : Loops.loop) : group list =
  let header_block = Ssa.block ssa loop.header in
  List.filter_map
    (fun (p : Ssa.phi) ->
      let outside, inside =
        List.partition (fun (pred, _) -> not (Loops.in_loop loop pred)) p.args
      in
      match outside, inside with
      | (_, init) :: more_outside, _ :: _
        when List.for_all (fun (_, v) -> Ssa.var_equal v init) more_outside ->
        let deltas =
          List.map (fun (_, v) -> chase ssa ~target:p.dst ~depth:0 v 0) inside
        in
        if List.for_all (fun d -> match d with Some d -> d > 0 | None -> false) deltas
        then Some { phi_var = p.dst; init; direction = Increasing }
        else if
          List.for_all (fun d -> match d with Some d -> d < 0 | None -> false) deltas
        then Some { phi_var = p.dst; init; direction = Decreasing }
        else None
      | _, _ -> None)
    header_block.phis

(* --- the Figure 4 fixpoint -------------------------------------------------- *)

type stmt =
  | Sphi of int * Ssa.phi
  | Sinstr of int * Ssa.instr

let stmt_defs = function
  | Sphi (_, p) -> [ p.dst ]
  | Sinstr (_, i) -> Ssa.instr_defs i

let stmt_uses = function
  | Sphi (_, p) -> List.map snd p.args
  | Sinstr (_, i) -> Ssa.instr_uses i

let compute_stmt env = function
  | Sphi (_, p) -> (
    (* A phi is bounded only when all arguments agree (monotonic phis
       are seeded separately and protected by the max update). *)
    match List.map (fun (_, v) -> lookup env v) p.args with
    | [] -> bot
    | first :: rest ->
      if List.for_all (bounds_equal first) rest then first else bot)
  | Sinstr (_, i) -> (
    match i with
    | Ssa.Def { rhs; _ } -> (
      match rhs with
      | Ssa.Mov op -> operand_bounds env op
      | Ssa.Bin (alu, a, b) ->
        bin_bounds alu (operand_bounds env a) (operand_bounds env b)
      | Ssa.Load _ | Ssa.Callret -> bot)
    | Ssa.Assert { src; rel; bound; _ } ->
      refine_assert env (lookup env src) rel bound
    | Ssa.Call _ | Ssa.Effect _ | Ssa.Store _ | Ssa.Control _ -> bot)

(* Run bound propagation for one loop.  Returns the variable-bounds
   environment; store dispositions are derived by {!dispositions}. *)
let propagate (ssa : Ssa.t) (loop : Loops.loop) : env * group list =
  let env : env = VarTbl.create 256 in
  let in_loop = Loops.in_loop loop in
  (* Seed loop-invariant variables: anything defined outside the loop
     bounds itself. *)
  Hashtbl.iter
    (fun (v : Ssa.var) site ->
      let outside =
        match site with
        | Ssa.Dentry -> true
        | Ssa.Dphi (b, _) | Ssa.Dinstr (b, _) -> not (in_loop b)
      in
      if outside then
        let b = Bound { level = Lli; expr = Bvar v } in
        VarTbl.replace env v { lo = b; hi = b })
    ssa.defs;
  (* Seed monotonic groups. *)
  let groups = monotonic_groups ssa loop in
  List.iter
    (fun g ->
      let init_bound = Bound { level = Lm; expr = Bvar g.init } in
      let b =
        match g.direction with
        | Increasing -> { lo = init_bound; hi = Unbounded }
        | Decreasing -> { lo = Unbounded; hi = init_bound }
      in
      VarTbl.replace env g.phi_var b)
    groups;
  (* Collect statements and the use map. *)
  let stmts = ref [] in
  Ssa.iter_instrs ssa (fun blk item ->
      match item with
      | `Phi p -> stmts := Sphi (blk, p) :: !stmts
      | `Instr i -> stmts := Sinstr (blk, i) :: !stmts);
  let stmts = !stmts in
  let users : (Ssa.var, stmt list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun s ->
      List.iter
        (fun u ->
          Hashtbl.replace users u (s :: Option.value ~default:[] (Hashtbl.find_opt users u)))
        (stmt_uses s))
    stmts;
  let work = Queue.create () in
  List.iter (fun s -> Queue.add s work) stmts;
  let steps = ref 0 in
  while not (Queue.is_empty work) && !steps < 200_000 do
    incr steps;
    let s = Queue.pop work in
    match stmt_defs s with
    | [ dst ] ->
      let computed = compute_stmt env s in
      let current = lookup env dst in
      let merged =
        { lo = max_bound current.lo computed.lo; hi = max_bound current.hi computed.hi }
      in
      if not (bounds_equal current merged) then begin
        VarTbl.replace env dst merged;
        List.iter
          (fun u -> Queue.add u work)
          (Option.value ~default:[] (Hashtbl.find_opt users dst))
      end
    | _ -> ()
  done;
  (env, groups)

(* --- store dispositions ------------------------------------------------------ *)

type disposition =
  | Keep
  | Invariant of { expr : bexpr; level : level }
  | Range of { lo : bexpr; hi : bexpr; lo_level : level; hi_level : level }

type store_decision = {
  origin : int;
  block : int;
  width : Insn.width;
  disposition : disposition;
}

(* A bound expression is evaluable in the loop pre-header when every
   variable it mentions carries the version live at the header's entry
   (i.e. defined outside the loop and still current). *)
let evaluable (ssa : Ssa.t) (loop : Loops.loop) expr =
  List.for_all
    (fun (v : Ssa.var) ->
      Ssa.var_equal v (Ssa.live_in_var ssa loop.header v.name))
    (bexpr_vars expr)

let dispositions (ssa : Ssa.t) (loop : Loops.loop) (env : env) : store_decision list
    =
  let in_loop = Loops.in_loop loop in
  let out = ref [] in
  Array.iteri
    (fun blk (b : Ssa.block) ->
      if in_loop blk then
        List.iter
          (fun i ->
            match i with
            | Ssa.Store { base; off; width; origin; _ } ->
              let addr =
                bin_bounds Insn.Add (operand_bounds env base)
                  (operand_bounds env off)
              in
              let disposition =
                match addr.lo, addr.hi with
                | Bound lo, Bound hi
                  when evaluable ssa loop lo.expr && evaluable ssa loop hi.expr
                  ->
                  if bexpr_equal lo.expr hi.expr then
                    Invariant
                      { expr = lo.expr; level = min_level lo.level hi.level }
                  else
                    Range
                      {
                        lo = lo.expr;
                        hi = hi.expr;
                        lo_level = lo.level;
                        hi_level = hi.level;
                      }
                | (Unbounded | Bound _), _ -> Keep
              in
              out := { origin; block = blk; width; disposition } :: !out
            | Ssa.Def _ | Ssa.Assert _ | Ssa.Call _ | Ssa.Effect _
            | Ssa.Control _ ->
              ())
          b.body)
    ssa.blocks;
  List.rev !out

let rec pp_bexpr ppf = function
  | Bconst c -> Fmt.int ppf c
  | Blab (l, 0) -> Fmt.pf ppf "&%s" l
  | Blab (l, o) -> Fmt.pf ppf "&%s%+d" l o
  | Bvar v -> Ssa.pp_var ppf v
  | Badd (a, b) -> Fmt.pf ppf "(%a + %a)" pp_bexpr a pp_bexpr b
  | Bsub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_bexpr a pp_bexpr b
  | Bmul (a, c) -> Fmt.pf ppf "(%a * %d)" pp_bexpr a c
  | Bshl (a, c) -> Fmt.pf ppf "(%a << %d)" pp_bexpr a c

let level_name = function La -> "La" | Lm -> "Lm" | Lli -> "Lli" | Lc -> "Lc"

let pp_level ppf l = Fmt.string ppf (level_name l)

let pp_bound ppf = function
  | Unbounded -> Fmt.string ppf "⊥"
  | Bound { level; expr } -> Fmt.pf ppf "%a@%a" pp_bexpr expr pp_level level

let pp_bounds ppf { lo; hi } =
  Fmt.pf ppf "[%a, %a]" pp_bound lo pp_bound hi

let pp_disposition ppf = function
  | Keep -> Fmt.string ppf "keep"
  | Invariant { expr; level } ->
    Fmt.pf ppf "invariant(%a@%a)" pp_bexpr expr pp_level level
  | Range { lo; hi; lo_level; hi_level } ->
    Fmt.pf ppf "range(%a@%a, %a@%a)" pp_bexpr lo pp_level lo_level pp_bexpr hi
      pp_level hi_level

(* Deterministic listing of an env's fixpoint: sorted by the rendered
   variable name so the audit journal and [--explain] output do not
   depend on hash-table iteration order. *)
let env_bindings (env : env) : (Ssa.var * bounds) list =
  VarTbl.fold (fun v b acc -> (v, b) :: acc) env []
  |> List.sort (fun ((a : Ssa.var), _) ((b : Ssa.var), _) ->
         let render (v : Ssa.var) = Fmt.str "%a" Ssa.pp_var v in
         match String.compare (render a) (render b) with
         | 0 -> compare a.version b.version
         | c -> c)
