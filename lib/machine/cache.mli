(** Direct-mapped combined instruction/data cache simulator.

    Mirrors the cache of the paper's SPARCstation: direct-mapped,
    combined I+D, 32-byte lines (§3.3.1).  Only hit/miss behaviour is
    modelled — contents live in {!Memory}. *)

type t = {
  line_bits : int;
  lines : int;
  mask : int;  (** [lines - 1] when [lines] is a power of two, else [-1] *)
  tags : int array;  (** per-line tag; [-1] marks an invalid line *)
  mutable hits : int;
  mutable misses : int;
}
(** The representation is exposed so {!Cpu}'s hot loop can inline the
    access check (one array read per instruction fetch / data access)
    without a cross-module call.  Code outside [Cpu] must treat it as
    abstract and go through {!access}/{!flush}. *)

val create : ?size_bytes:int -> ?line_bytes:int -> unit -> t
(** Defaults: 64 KiB, 32-byte lines.
    @raise Invalid_argument if size is not a multiple of the line size. *)

val access : t -> int -> bool
(** Touch the line containing [addr]; returns [true] on hit and installs
    the line on miss. *)

val hits : t -> int
val misses : t -> int
val reset_counters : t -> unit

val flush : t -> unit
(** Invalidate all lines and reset counters. *)

(** {1 Checkpoint support} *)

type snapshot

val snapshot : t -> snapshot
(** Copy the tag array and counters.  Restoring an exact cache state is
    what makes replayed execution reproduce the original hit/miss
    stream — and therefore identical cycle counts — from a checkpoint. *)

val restore : t -> snapshot -> unit
(** @raise Invalid_argument if the snapshot's geometry differs. *)

val snapshot_bytes : snapshot -> int
(** Host bytes held by the snapshot's tag array (journal accounting). *)
