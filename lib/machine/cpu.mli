(** The SPARC-subset interpreter with cycle accounting.

    Cycle model: every instruction costs one base cycle; loads/stores
    add [load_cycles]/[store_cycles] plus [miss_penalty] per cache miss
    (instruction fetch also goes through the combined cache);
    multiplies, divides, traps and register-window spills add their
    configured costs.  Overheads reported by the benchmark harness are
    ratios of these cycle counts, standing in for the paper's wall-clock
    ratios. *)

type config = {
  cache_size : int;
  line_bytes : int;
  load_cycles : int;    (** extra cycles for a load over the base cycle *)
  store_cycles : int;
  miss_penalty : int;
  mul_cycles : int;
  div_cycles : int;
  trap_cycles : int;    (** cost of entering a [ta] trap *)
  spill_cycles : int;   (** register-window overflow/underflow cost *)
  nwindows : int;
}

val default_config : config

exception Fault of { pc : int; reason : string }
(** Irrecoverable machine fault: bad pc, misalignment, unresolved label,
    unhandled trap, division by zero, window underflow. *)

exception Out_of_fuel of { executed : int }

type t

val create : ?config:config -> Sparc.Assembler.image -> t
(** Load an image: initialized data written to memory, [pc] at the
    entry point, [%sp] at the stack top, heap break past static data. *)

val get : t -> Sparc.Reg.t -> int
val set : t -> Sparc.Reg.t -> int -> unit

val step : t -> unit
(** Execute one instruction.  Instructions are pre-decoded into
    specialized closures at load time (and on {!patch}/{!rollback}), so
    a step with no probe registered at the pc is one direct-indexed
    table read plus one indirect call. *)

val run : ?fuel:int -> t -> int
(** Run until the program halts (trap 0); returns the exit code.
    @raise Out_of_fuel after [fuel] instructions (default 2·10{^8}). *)

val halt : t -> int -> unit

val on_trap : t -> int -> (t -> unit) -> unit
(** Install a trap handler; the handler runs after [pc] has advanced
    past the [ta] instruction. *)

val install_basic_services : t -> unit
(** Traps 0-3: exit, print-int, print-char, sbrk. *)

val add_probe : t -> int -> (t -> unit) -> unit
(** Run a zero-cost observer just before each execution of the
    instruction at [addr] — used by the benchmark harness to count
    events (e.g. segment-cache hits) without perturbing the simulation.
    Probes at the same address fire in registration order.  Probes live
    in a direct-indexed table parallel to the text segment, so the
    per-instruction cost when no probe is registered is a single array
    read. @raise Fault if [addr] is outside text. *)

val output : t -> string
(** Everything the program printed via the print traps. *)

val print_string : t -> string -> unit

val sbrk : t -> int -> int
(** Advance the heap break by [bytes] (rounded up to 8); returns the old
    break. *)

val fetch_at : t -> int -> Sparc.Insn.t
(** @raise Fault if [addr] is outside text. *)

val patch : t -> int -> Sparc.Insn.t -> unit
(** Replace the decoded instruction at [addr] — the primitive beneath
    Kessler-style fast-breakpoint patches.  The slot's pre-decoded
    closure is recompiled in place. *)

val add_cycles : t -> int -> unit
(** Charge extra cycles (used by trap handlers modelling expensive
    kernel paths, e.g. the dbx single-step comparison). *)

(** Direct state access for services, the MRS runtime, and tests. *)

val mem : t -> Memory.t
val config : t -> config
val pc : t -> int
val set_pc : t -> int -> unit
val brk : t -> int
val halted : t -> int option
val set_store_hook : t -> (t -> addr:int -> width:Sparc.Insn.width -> unit) -> unit
(** Register an observer invoked after every executed store with its
    effective address (the test oracle; the hardware-watchpoint
    strategy).  Hooks compose: each registered hook runs in
    registration order.  Registration is amortized O(1) (hooks live in
    a counted array), and a zero-hook machine pays only one integer
    test per memory operation. *)

val set_load_hook : t -> (t -> addr:int -> width:Sparc.Insn.width -> unit) -> unit
(** Same for loads (the read-monitoring oracle). *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture the entire architectural state — memory, windows, cache,
    pc, flags, patched text, output, counters (§5: checkpointing for
    replayed execution).  Copy-on-write: memory capture is O(1); only
    pages dirtied after the checkpoint get copied, and checkpoints
    taken back-to-back share every untouched page (and, absent
    patching, one text copy). *)

val rollback : t -> checkpoint -> unit
(** Restore a checkpoint exactly — including cache tags and hit/miss
    counters — so subsequent execution replays the original run
    deterministically, reproducing {!stats} bit-for-bit.  O(resident
    pages) table rebuild; restored pages stay shared with the
    checkpoint and are copied back out lazily on write. *)

val checkpoint_view : checkpoint -> Memory.view
(** The memory view captured by the checkpoint (page-sharing
    accounting: {!Memory.view_diff} between adjacent checkpoints). *)

val checkpoint_insns : checkpoint -> int
(** Instruction count at capture time — the replay journal's key. *)

val checkpoint_overhead_bytes : checkpoint -> int
(** Fixed non-page cost of the checkpoint (cache tags, window frames,
    captured output, scalars); page bytes are the journal's to count. *)

val state_digest : t -> string
(** Hex digest of the architectural state: pc, flags, break, halt
    status, output, register windows, and every nonzero memory page in
    address order.  Execution counters and cache state are excluded
    (compare {!stats} separately); all-zero pages are skipped so page
    materialization cannot perturb it.  The replay determinism guard
    compares this at the replay target against the original run. *)

type stats = {
  instrs : int;
  cycles : int;
  loads : int;
  stores : int;
  branches : int;
  traps : int;
  cache_hits : int;
  cache_misses : int;
  window_spills : int;
}

val stats : t -> stats

(** {2 Dispatch counters}

    Observability-only counters, exposed separately from {!stats}:
    the differential fuzz harness demands that a probe-free fast run and
    a probed slow run agree on [stats], and these necessarily differ. *)

val instr_count : t -> int
(** Instructions executed so far ([(stats t).instrs] without building
    the record — cheap enough for per-hit trace events). *)

val cycle_count : t -> int
(** Simulated cycles so far ([(stats t).cycles] without the record). *)

val probe_dispatches : t -> int
(** Total probe invocations (slow-path steps count each probe fired). *)

val store_hook_dispatches : t -> int
(** Total store-hook invocations across all executed stores. *)

val load_hook_dispatches : t -> int

val trap_count : t -> int
(** Executed [ta] instructions ([(stats t).traps]). *)

(** {2 Hot-path profiler hooks}

    The interpreter side of {!Profile}: the profiler owns the counter
    arrays; the step path bumps the executed slot's exec counter, a
    taken counter per executed branch that left the fall-through, and
    fires a closure on calls and returns.  Gated exactly like the
    dispatch counters: none of it is part of {!stats} (fast/generic
    differential parity is preserved), and with no profiler installed —
    or the profiler disabled — every step pays one boolean test. *)

val profile_static : t -> (int * int) array
(** Per-slot [(kind, static target slot or -1)] classification of the
    current text ([Profile.kind_*] values) — the input to
    {!Profile.create}'s block discovery.  Reflects patches applied so
    far; take it after instrumentation for patched-text profiles. *)

val profile_install :
  t -> exec:int array -> taken:int array -> transfer:(int -> int -> unit) ->
  unit
(** Attach counter arrays (each at least text-length, normally
    {!Profile.exec_array}/{!Profile.taken_array}) and the call/return
    callback [transfer kind slot], fired after the transfer executed —
    read the destination from {!pc} and totals from
    {!instr_count}/{!cycle_count}.  Enables profiling.
    @raise Invalid_argument if an array is shorter than text. *)

val profile_enabled : t -> bool

val profile_set_enabled : t -> bool -> unit
(** Pause/resume a previously installed profiler — the replay layer
    pauses it around rollback/re-execution so replayed instructions are
    not double-counted.  @raise Invalid_argument when enabling with no
    profiler installed. *)

(** {1 Time-series sampler hook}

    The interpreter side of the telemetry sampler: a countdown over
    executed instructions that fires a closure every [every]th step
    with the live instruction count.  Same gating discipline as the
    profiler — never part of {!stats}, and with no sampler installed
    (or the sampler paused) every step pays one boolean test. *)

val sample_install : t -> every:int -> hook:(int -> unit) -> unit
(** Arm the sampler: [hook insn] fires after every [every]th executed
    instruction.  @raise Invalid_argument when [every < 1]. *)

val sample_enabled : t -> bool

val sample_set_enabled : t -> bool -> unit
(** Pause/resume a previously installed sampler — the replay layer
    pauses it around rollback/re-execution so replayed instructions do
    not produce phantom samples.  @raise Invalid_argument when enabling
    with no sampler installed. *)
