open Sparc

(* Direct-mapped cache model.  [access] runs once per instruction fetch
   and once per data access, so it is one of the simulator's hottest
   functions: the line index uses a bit mask whenever the line count is
   a power of two (the seed's [mod] compiled to an integer divide), and
   validity is folded into the tag array (tag [-1] can never match a
   real line address, which is non-negative). *)

type t = {
  line_bits : int;
  lines : int;
  mask : int;  (* [lines - 1] when lines is a power of two, else [-1] *)
  tags : int array;
  mutable hits : int;
  mutable misses : int;
}

let invalid_tag = -1

let create ?(size_bytes = 64 * 1024) ?(line_bytes = 32) () =
  if size_bytes mod line_bytes <> 0 then invalid_arg "Cache.create";
  let lines = size_bytes / line_bytes in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  {
    line_bits = log2 line_bytes;
    lines;
    mask = (if lines land (lines - 1) = 0 then lines - 1 else -1);
    tags = Array.make lines invalid_tag;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let line_addr = Word.to_unsigned addr lsr t.line_bits in
  let idx =
    if t.mask >= 0 then line_addr land t.mask else line_addr mod t.lines
  in
  if Array.unsafe_get t.tags idx = line_addr then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    Array.unsafe_set t.tags idx line_addr;
    false
  end

let hits t = t.hits
let misses t = t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.fill t.tags 0 t.lines invalid_tag;
  reset_counters t

(* Exact state capture for checkpoint/replay: restoring tags *and*
   counters makes re-execution from a checkpoint reproduce the original
   run's hit/miss stream (and hence cycle counts) bit-for-bit. *)
type snapshot = { s_tags : int array; s_hits : int; s_misses : int }

let snapshot t = { s_tags = Array.copy t.tags; s_hits = t.hits; s_misses = t.misses }

let restore t s =
  if Array.length s.s_tags <> t.lines then invalid_arg "Cache.restore";
  Array.blit s.s_tags 0 t.tags 0 t.lines;
  t.hits <- s.s_hits;
  t.misses <- s.s_misses

let snapshot_bytes s = Array.length s.s_tags * 8
