open Sparc

exception Misaligned of { addr : int; width : int }

let page_bits = 12
let page_words = 1 lsl (page_bits - 2)
let offset_mask = (1 lsl page_bits) - 1

type t = {
  pages : (int, int array) Hashtbl.t;
  (* Single-slot page cache: the last page touched through the word
     paths.  Spatial locality makes almost every access hit the slot,
     so the common case is one integer compare instead of a [Hashtbl]
     probe (which also allocates a [Some] per hit).  [last_key] is
     [invalid_key] whenever [last_page] must not be trusted. *)
  mutable last_key : int;
  mutable last_page : int array;
}

let invalid_key = min_int
let no_page : int array = [||]

let create () = { pages = Hashtbl.create 1024; last_key = invalid_key; last_page = no_page }

let page_of t addr =
  let key = Word.to_unsigned addr lsr page_bits in
  if key = t.last_key then t.last_page
  else
    match Hashtbl.find_opt t.pages key with
    | Some p ->
      t.last_key <- key;
      t.last_page <- p;
      p
    | None ->
      let p = Array.make page_words 0 in
      Hashtbl.add t.pages key p;
      t.last_key <- key;
      t.last_page <- p;
      p

let check_align addr width =
  if Word.to_unsigned addr land (width - 1) <> 0 then
    raise (Misaligned { addr; width })

let read_word t addr =
  let a = Word.to_unsigned addr in
  if a land 3 <> 0 then raise (Misaligned { addr; width = 4 });
  let key = a lsr page_bits in
  if key = t.last_key then Array.unsafe_get t.last_page ((a land offset_mask) lsr 2)
  else
    (* Reads of never-written pages return zero without allocating. *)
    match Hashtbl.find_opt t.pages key with
    | None -> 0
    | Some p ->
      t.last_key <- key;
      t.last_page <- p;
      Array.unsafe_get p ((a land offset_mask) lsr 2)

let write_word t addr v =
  let a = Word.to_unsigned addr in
  if a land 3 <> 0 then raise (Misaligned { addr; width = 4 });
  Array.unsafe_set (page_of t addr) ((a land offset_mask) lsr 2) (Word.norm v)

let read_byte t addr =
  let w = read_word t (addr land lnot 3) in
  (* Big-endian byte order, as on SPARC. *)
  let shift = (3 - (Word.to_unsigned addr land 3)) * 8 in
  (Word.to_unsigned w lsr shift) land 0xFF

let write_byte t addr v =
  let base = addr land lnot 3 in
  let w = Word.to_unsigned (read_word t base) in
  let shift = (3 - (Word.to_unsigned addr land 3)) * 8 in
  let mask = lnot (0xFF lsl shift) land 0xFFFFFFFF in
  write_word t base ((w land mask) lor ((v land 0xFF) lsl shift))

let read_half t addr =
  check_align addr 2;
  let hi = read_byte t addr and lo = read_byte t (addr + 1) in
  (hi lsl 8) lor lo

let write_half t addr v =
  check_align addr 2;
  write_byte t addr (v lsr 8);
  write_byte t (addr + 1) v

let read_signed t addr = function
  | Insn.Word -> read_word t addr
  | Insn.Byte ->
    let b = read_byte t addr in
    if b land 0x80 <> 0 then b - 0x100 else b
  | Insn.Half ->
    let h = read_half t addr in
    if h land 0x8000 <> 0 then h - 0x10000 else h
  | Insn.Double -> invalid_arg "Memory.read_signed: Double"

let read_unsigned t addr = function
  | Insn.Word -> read_word t addr
  | Insn.Byte -> read_byte t addr
  | Insn.Half -> read_half t addr
  | Insn.Double -> invalid_arg "Memory.read_unsigned: Double"

let snapshot t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k page -> Hashtbl.replace pages k (Array.copy page)) t.pages;
  { pages; last_key = invalid_key; last_page = no_page }

let restore t snap =
  Hashtbl.reset t.pages;
  Hashtbl.iter (fun k page -> Hashtbl.replace t.pages k (Array.copy page)) snap.pages;
  (* The cached slot points into the old page set. *)
  t.last_key <- invalid_key;
  t.last_page <- no_page

let allocated_words t =
  Hashtbl.length t.pages * page_words

let iter_written t f =
  Hashtbl.iter
    (fun key page ->
      Array.iteri
        (fun i v -> if v <> 0 then f ((key lsl page_bits) + (i * 4)) v)
        page)
    t.pages
