open Sparc

exception Misaligned of { addr : int; width : int }

let page_bits = 12
let page_words = 1 lsl (page_bits - 2)
let page_bytes = 1 lsl page_bits
let offset_mask = (1 lsl page_bits) - 1

module IntMap = Map.Make (Int)

type view = int array IntMap.t

(* A materialized page.  [gen] is the epoch in which [arr] was last
   (re)copied: when [gen < epoch] the array may be shared with one or
   more snapshot views and must be copied before the next write
   (copy-on-write). *)
type page = { mutable arr : int array; mutable gen : int }

type t = {
  pages : (int, page) Hashtbl.t;
  (* Single-slot page cache: the last page touched through the word
     paths.  Spatial locality makes almost every access hit the slot,
     so the common case is one integer compare instead of a [Hashtbl]
     probe (which also allocates a [Some] per hit).  [last_key] is
     [invalid_key] whenever [last_page] must not be trusted.

     COW invariant: the slot only ever holds arrays private to the
     current epoch ([gen = epoch]), so {!Cpu}'s inlined store fast path
     may write through it without a generation check. *)
  mutable last_key : int;
  mutable last_page : int array;
  mutable epoch : int;
  (* Persistent index of the live page arrays, maintained incrementally
     whenever a page's array identity changes (materialization or COW).
     [snapshot_cow] is then O(1): bump the epoch and hand out the
     current map. *)
  mutable view : view;
  mutable cow_copies : int;  (* cumulative pages copied by COW *)
}

let invalid_key = min_int
let no_page : int array = [||]

let create () =
  {
    pages = Hashtbl.create 1024;
    last_key = invalid_key;
    last_page = no_page;
    epoch = 1;
    view = IntMap.empty;
    cow_copies = 0;
  }

let page_of t addr =
  let key = Word.to_unsigned addr lsr page_bits in
  if key = t.last_key then t.last_page
  else
    match Hashtbl.find_opt t.pages key with
    | Some p ->
      if p.gen < t.epoch then begin
        (* Shared with a snapshot view: copy before the write the
           caller is about to perform. *)
        p.arr <- Array.copy p.arr;
        p.gen <- t.epoch;
        t.view <- IntMap.add key p.arr t.view;
        t.cow_copies <- t.cow_copies + 1
      end;
      t.last_key <- key;
      t.last_page <- p.arr;
      p.arr
    | None ->
      let arr = Array.make page_words 0 in
      Hashtbl.add t.pages key { arr; gen = t.epoch };
      t.view <- IntMap.add key arr t.view;
      t.last_key <- key;
      t.last_page <- arr;
      arr

let check_align addr width =
  if Word.to_unsigned addr land (width - 1) <> 0 then
    raise (Misaligned { addr; width })

let read_word t addr =
  let a = Word.to_unsigned addr in
  if a land 3 <> 0 then raise (Misaligned { addr; width = 4 });
  let key = a lsr page_bits in
  if key = t.last_key then Array.unsafe_get t.last_page ((a land offset_mask) lsr 2)
  else
    (* Reads of never-written pages return zero without allocating. *)
    match Hashtbl.find_opt t.pages key with
    | None -> 0
    | Some p ->
      (* Only private pages may enter the slot cache (COW invariant);
         reads of shared pages pay the Hashtbl probe until a write
         copies them into the current epoch. *)
      if p.gen = t.epoch then begin
        t.last_key <- key;
        t.last_page <- p.arr
      end;
      Array.unsafe_get p.arr ((a land offset_mask) lsr 2)

let write_word t addr v =
  let a = Word.to_unsigned addr in
  if a land 3 <> 0 then raise (Misaligned { addr; width = 4 });
  Array.unsafe_set (page_of t addr) ((a land offset_mask) lsr 2) (Word.norm v)

let read_byte t addr =
  let w = read_word t (addr land lnot 3) in
  (* Big-endian byte order, as on SPARC. *)
  let shift = (3 - (Word.to_unsigned addr land 3)) * 8 in
  (Word.to_unsigned w lsr shift) land 0xFF

let write_byte t addr v =
  let base = addr land lnot 3 in
  let w = Word.to_unsigned (read_word t base) in
  let shift = (3 - (Word.to_unsigned addr land 3)) * 8 in
  let mask = lnot (0xFF lsl shift) land 0xFFFFFFFF in
  write_word t base ((w land mask) lor ((v land 0xFF) lsl shift))

let read_half t addr =
  check_align addr 2;
  let hi = read_byte t addr and lo = read_byte t (addr + 1) in
  (hi lsl 8) lor lo

let write_half t addr v =
  check_align addr 2;
  write_byte t addr (v lsr 8);
  write_byte t (addr + 1) v

let read_signed t addr = function
  | Insn.Word -> read_word t addr
  | Insn.Byte ->
    let b = read_byte t addr in
    if b land 0x80 <> 0 then b - 0x100 else b
  | Insn.Half ->
    let h = read_half t addr in
    if h land 0x8000 <> 0 then h - 0x10000 else h
  | Insn.Double -> invalid_arg "Memory.read_signed: Double"

let read_unsigned t addr = function
  | Insn.Word -> read_word t addr
  | Insn.Byte -> read_byte t addr
  | Insn.Half -> read_half t addr
  | Insn.Double -> invalid_arg "Memory.read_unsigned: Double"

(* --- Copy-on-write snapshots ----------------------------------------- *)

let snapshot_cow t =
  (* From now on every resident page is shared with the returned view;
     the first write to each will copy it.  The slot cache may hold a
     page that was private a moment ago, so it must be dropped. *)
  t.epoch <- t.epoch + 1;
  t.last_key <- invalid_key;
  t.last_page <- no_page;
  t.view

let restore_cow t view =
  Hashtbl.reset t.pages;
  IntMap.iter
    (* [gen = 0 < epoch]: the restored arrays still belong to the
       snapshot; the first write to each page copies it out. *)
    (fun key arr -> Hashtbl.replace t.pages key { arr; gen = 0 })
    view;
  t.view <- view;
  t.epoch <- t.epoch + 1;
  t.last_key <- invalid_key;
  t.last_page <- no_page

let epoch t = t.epoch
let cow_copies t = t.cow_copies
let view_pages v = IntMap.cardinal v
let view_bytes v = IntMap.cardinal v * page_bytes

let view_diff prev next =
  (* Pages physically differing between two adjacent views: present in
     [next] with a different (or no) binding in [prev].  With [prev] the
     previous checkpoint's view this counts exactly the pages captured
     fresh by [next] — the O(dirty) cost of the checkpoint. *)
  IntMap.fold
    (fun key arr acc ->
      match IntMap.find_opt key prev with
      | Some prev_arr when prev_arr == arr -> acc
      | Some _ | None -> acc + 1)
    next 0

let view_read_word view addr =
  let a = Word.to_unsigned addr in
  if a land 3 <> 0 then raise (Misaligned { addr; width = 4 });
  match IntMap.find_opt (a lsr page_bits) view with
  | None -> 0
  | Some arr -> Array.unsafe_get arr ((a land offset_mask) lsr 2)

let iter_view view f = IntMap.iter f view

let allocated_words t =
  Hashtbl.length t.pages * page_words

let iter_written t f =
  Hashtbl.iter
    (fun key (p : page) ->
      Array.iteri
        (fun i v -> if v <> 0 then f ((key lsl page_bits) + (i * 4)) v)
        p.arr)
    t.pages

let iter_pages t f = Hashtbl.iter (fun key p -> f key p.arr) t.pages
