(** The SPARC windowed register file.

    [save] pushes a window whose {i in} registers alias the caller's
    {i out} registers; [restore] pops it.  All windows are retained in
    memory, so overflow past [nwindows] never loses data — it is counted
    in {!spills}/{!fills} and charged as cycles by the CPU, standing in
    for the window overflow/underflow trap handlers of a real kernel. *)

exception Underflow
(** Raised by [restore] on the outermost window, or register access with
    no window (cannot happen after {!create}). *)

type frame = { locals : int array; ins : int array; outs : int array }

type t = {
  globals : int array;
  mutable frames : frame list;
  mutable cur : frame;  (** head of [frames], cached for the accessors *)
  nwindows : int;
  mutable depth : int;
  mutable resident : int;
  mutable spills : int;
  mutable fills : int;
}
(** The representation is exposed so {!Cpu}'s hot loop can inline
    register reads/writes (several per simulated instruction) without a
    cross-module call.  Code outside [Cpu] must treat it as abstract
    and go through {!get}/{!set}/{!save}/{!restore}. *)

val create : ?nwindows:int -> unit -> t
(** Default [nwindows] is 8, as on the paper's SPARCstation. *)

val get : t -> Sparc.Reg.t -> int
(** [%g0] reads as zero. *)

val set : t -> Sparc.Reg.t -> int -> unit
(** Writes to [%g0] are discarded; values are normalized. *)

val save : t -> unit
val restore : t -> unit

val copy : t -> t
(** Deep copy preserving the window overlap structure (checkpointing). *)

val restore_from : t -> t -> unit

val depth : t -> int
val spills : t -> int
val fills : t -> int
