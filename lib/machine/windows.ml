open Sparc

exception Underflow

type frame = { locals : int array; ins : int array; outs : int array }

type t = {
  globals : int array;
  mutable frames : frame list;
  (* The head of [frames], cached so the register accessors — several
     per simulated instruction — read a field instead of matching on the
     list. *)
  mutable cur : frame;
  nwindows : int;
  mutable depth : int;
  mutable resident : int;  (* windows currently in the register file *)
  mutable spills : int;
  mutable fills : int;
}

let fresh_frame ins =
  { locals = Array.make 8 0; ins; outs = Array.make 8 0 }

let create ?(nwindows = 8) () =
  let f0 = fresh_frame (Array.make 8 0) in
  {
    globals = Array.make 8 0;
    frames = [ f0 ];
    cur = f0;
    nwindows;
    depth = 1;
    resident = 1;
    spills = 0;
    fills = 0;
  }

let get t r =
  match r with
  | Reg.G 0 -> 0
  | Reg.G i -> t.globals.(i)
  | Reg.O i -> t.cur.outs.(i)
  | Reg.L i -> t.cur.locals.(i)
  | Reg.I i -> t.cur.ins.(i)

let set t r v =
  let v = Word.norm v in
  match r with
  | Reg.G 0 -> ()
  | Reg.G i -> t.globals.(i) <- v
  | Reg.O i -> t.cur.outs.(i) <- v
  | Reg.L i -> t.cur.locals.(i) <- v
  | Reg.I i -> t.cur.ins.(i) <- v

(* The child window's ins ARE the parent's outs: sharing the array gives
   the SPARC register-window overlap for free.  All frames are retained,
   so window overflow only costs cycles, never correctness.

   The overflow model matches real hardware behaviour: [resident] counts
   windows held in the register file.  A save with the file full spills
   the oldest window (one trap); a restore whose target window was
   spilled fills it back (one trap).  Oscillating call/return at a fixed
   depth beyond [nwindows] is therefore free after the first crossing,
   as on a real SPARC. *)
let save t =
  let child = fresh_frame t.cur.outs in
  t.frames <- child :: t.frames;
  t.cur <- child;
  t.depth <- t.depth + 1;
  if t.resident >= t.nwindows then t.spills <- t.spills + 1
  else t.resident <- t.resident + 1

let restore t =
  match t.frames with
  | [] | [ _ ] -> raise Underflow
  | _ :: (parent :: _ as rest) ->
    t.frames <- rest;
    t.cur <- parent;
    t.depth <- t.depth - 1;
    if t.resident <= 1 then t.fills <- t.fills + 1
    else t.resident <- t.resident - 1

(* Did the last save/restore cross the overflow boundary?  The CPU
   charges spill cycles based on the counters' deltas. *)
(* Deep copy that preserves the in/out overlap: rebuild from the oldest
   frame, threading each copied outs array into the next frame's ins. *)
let copy t =
  let oldest_first = List.rev t.frames in
  let copied =
    match oldest_first with
    | [] -> []
    | first :: rest ->
      let first' =
        { locals = Array.copy first.locals; ins = Array.copy first.ins;
          outs = Array.copy first.outs }
      in
      let _, acc =
        List.fold_left
          (fun (parent, acc) f ->
            let f' =
              { locals = Array.copy f.locals; ins = parent.outs;
                outs = Array.copy f.outs }
            in
            (f', f' :: acc))
          (first', [ first' ]) rest
      in
      acc
  in
  let cur = match copied with f :: _ -> f | [] -> raise Underflow in
  {
    globals = Array.copy t.globals;
    frames = copied;
    cur;
    nwindows = t.nwindows;
    depth = t.depth;
    resident = t.resident;
    spills = t.spills;
    fills = t.fills;
  }

let restore_from t snap =
  let s = copy snap in
  Array.blit s.globals 0 t.globals 0 8;
  t.frames <- s.frames;
  t.cur <- s.cur;
  t.depth <- s.depth;
  t.resident <- s.resident;
  t.spills <- s.spills;
  t.fills <- s.fills

let depth t = t.depth
let spills t = t.spills
let fills t = t.fills
