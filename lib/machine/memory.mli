(** Sparse simulated memory.

    The full 32-bit address space is available; 4-KiB pages are
    materialized on first write, and reads of untouched pages return
    zero.  Byte order is big-endian, as on SPARC.  Values are stored in
    {!Sparc.Word} normalized form. *)

exception Misaligned of { addr : int; width : int }

type t = {
  pages : (int, int array) Hashtbl.t;
  mutable last_key : int;  (** single-slot page cache; see [memory.ml] *)
  mutable last_page : int array;
}
(** The representation is exposed so {!Cpu}'s hot loop can inline the
    aligned word load/store fast path (a hit on the single-slot page
    cache is one compare and one array access).  Code outside [Cpu]
    must treat it as abstract and use the accessors below. *)

val page_bits : int
(** Page size is [1 lsl page_bits] bytes. *)

val offset_mask : int
(** [(1 lsl page_bits) - 1]: mask selecting the in-page byte offset. *)

val create : unit -> t

val read_word : t -> int -> int
(** @raise Misaligned unless [addr] is 4-byte aligned. *)

val write_word : t -> int -> int -> unit

val read_byte : t -> int -> int
(** Unsigned byte in [0, 256). *)

val write_byte : t -> int -> int -> unit

val read_half : t -> int -> int
(** Unsigned halfword. @raise Misaligned unless 2-byte aligned. *)

val write_half : t -> int -> int -> unit

val read_signed : t -> int -> Sparc.Insn.width -> int
(** Sign-extending sub-word read.  Word width reads the full word.
    @raise Invalid_argument for [Double] (handled by the CPU as a pair). *)

val read_unsigned : t -> int -> Sparc.Insn.width -> int

val snapshot : t -> t
(** A deep copy (checkpointing support). *)

val restore : t -> t -> unit
(** Overwrite [t]'s contents with a snapshot's. *)

val allocated_words : t -> int
(** Number of words in materialized pages — the denominator for the
    segmented bitmap's ~3% space-overhead figure. *)

val iter_written : t -> (int -> int -> unit) -> unit
(** Iterate over non-zero words of materialized pages. *)
