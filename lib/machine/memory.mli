(** Sparse simulated memory with copy-on-write snapshots.

    The full 32-bit address space is available; 4-KiB pages are
    materialized on first write, and reads of untouched pages return
    zero.  Byte order is big-endian, as on SPARC.  Values are stored in
    {!Sparc.Word} normalized form.

    Checkpointing is copy-on-write: {!snapshot_cow} is O(1) — it hands
    out a persistent view of the current page map and bumps a
    generation counter; the first write to each page after a snapshot
    copies just that page.  Adjacent checkpoints therefore share every
    page that was not dirtied between them, replacing the former
    O(allocated-memory) deep copy with an O(dirty-pages) one. *)

exception Misaligned of { addr : int; width : int }

type view
(** An immutable snapshot of the page map.  Cheap to hold: pages are
    shared structurally with the live memory and with other views until
    a write separates them. *)

type page = { mutable arr : int array; mutable gen : int }
(** A materialized page: [gen] is the epoch in which [arr] was last
    copied; [gen < epoch] means [arr] may be shared with a snapshot
    view and must be copied before the next write. *)

type t = {
  pages : (int, page) Hashtbl.t;
  mutable last_key : int;  (** single-slot page cache; see [memory.ml] *)
  mutable last_page : int array;
  mutable epoch : int;
  mutable view : view;
  mutable cow_copies : int;
}
(** The representation is exposed so {!Cpu}'s hot loop can inline the
    aligned word load/store fast path (a hit on the single-slot page
    cache is one compare and one array access).  The slot cache only
    ever holds pages private to the current epoch, so the inlined store
    path needs no generation check.  Code outside [Cpu] must treat the
    type as abstract and use the accessors below. *)

val page_bits : int
(** Page size is [1 lsl page_bits] bytes. *)

val page_bytes : int
(** [1 lsl page_bits]. *)

val offset_mask : int
(** [(1 lsl page_bits) - 1]: mask selecting the in-page byte offset. *)

val create : unit -> t

val read_word : t -> int -> int
(** @raise Misaligned unless [addr] is 4-byte aligned. *)

val write_word : t -> int -> int -> unit

val read_byte : t -> int -> int
(** Unsigned byte in [0, 256). *)

val write_byte : t -> int -> int -> unit

val read_half : t -> int -> int
(** Unsigned halfword. @raise Misaligned unless 2-byte aligned. *)

val write_half : t -> int -> int -> unit

val read_signed : t -> int -> Sparc.Insn.width -> int
(** Sign-extending sub-word read.  Word width reads the full word.
    @raise Invalid_argument for [Double] (handled by the CPU as a pair). *)

val read_unsigned : t -> int -> Sparc.Insn.width -> int

(** {1 Copy-on-write snapshots} *)

val snapshot_cow : t -> view
(** Capture the current contents as an immutable view.  O(1): no page
    is copied now; subsequent writes copy the pages they touch. *)

val restore_cow : t -> view -> unit
(** Reset [t]'s contents to a view's.  O(resident pages) table rebuild,
    zero page copies: the restored pages stay shared with the view and
    are copied back out lazily on write. *)

val epoch : t -> int
(** Current generation; bumped by every {!snapshot_cow}/{!restore_cow}. *)

val cow_copies : t -> int
(** Cumulative pages copied by the COW machinery since [create] — the
    real byte cost of all snapshots taken so far is
    [cow_copies * page_bytes] plus one copy of the final resident set. *)

val view_pages : view -> int
(** Number of pages resident in the view. *)

val view_bytes : view -> int
(** [view_pages v * page_bytes]: bytes addressed by the view (shared or
    not). *)

val view_diff : view -> view -> int
(** [view_diff prev next]: pages of [next] not physically shared with
    [prev] — with [prev] the preceding checkpoint, the number of pages
    this checkpoint actually captured (its O(dirty) cost). *)

val view_read_word : view -> int -> int
(** Read a word out of a snapshot without restoring it.
    @raise Misaligned unless 4-byte aligned. *)

val iter_view : view -> (int -> int array -> unit) -> unit
(** Iterate the view's pages in ascending key order (key, words). *)

val allocated_words : t -> int
(** Number of words in materialized pages — the denominator for the
    segmented bitmap's ~3% space-overhead figure. *)

val iter_written : t -> (int -> int -> unit) -> unit
(** Iterate over non-zero words of materialized pages. *)

val iter_pages : t -> (int -> int array -> unit) -> unit
(** Iterate materialized pages (key, words); unspecified order. *)
