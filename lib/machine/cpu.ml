open Sparc

type config = {
  cache_size : int;
  line_bytes : int;
  load_cycles : int;
  store_cycles : int;
  miss_penalty : int;
  mul_cycles : int;
  div_cycles : int;
  trap_cycles : int;
  spill_cycles : int;
  nwindows : int;
}

let default_config =
  {
    cache_size = 64 * 1024;
    line_bytes = 32;
    load_cycles = 1;
    store_cycles = 1;
    miss_penalty = 10;
    mul_cycles = 5;
    div_cycles = 20;
    trap_cycles = 50;
    spill_cycles = 40;
    nwindows = 8;
  }

exception Fault of { pc : int; reason : string }

exception Out_of_fuel of { executed : int }

type t = {
  mem : Memory.t;
  cache : Cache.t;
  win : Windows.t;
  mutable pc : int;
  mutable icc : int;  (* packed {!Cond} flags; see [Cond.pack] *)
  mutable halted : int option;
  mutable ninstrs : int;
  mutable cycles : int;
  mutable nloads : int;
  mutable nstores : int;
  mutable nbranches : int;
  mutable ntraps : int;
  (* Dispatch counters for the observability layer: how many times the
     probe slow path ran and how many hook invocations the memory
     operations performed.  Deliberately *not* part of {!stats} — the
     fuzz harness checks that a probe-free fast run and a probed slow
     run produce identical [stats], and dispatch counts necessarily
     differ between them. *)
  mutable nprobe_dispatches : int;
  mutable nstore_hook_dispatches : int;
  mutable nload_hook_dispatches : int;
  text : Insn.t array;
  text_base : int;
  traps : (int, t -> unit) Hashtbl.t;
  (* Direct-indexed probe table, parallel to [text]: slot [i] holds the
     probes registered for pc [text_base + 4i], in registration order.
     The empty slots all share one physical [ [||] ], so the hot loop's
     fast path is a single array read plus a length test — no hashing,
     no allocation (the seed did a [Hashtbl.find_opt] per step). *)
  probes : (t -> unit) array array;
  out : Buffer.t;
  mutable brk : int;
  config : config;
  (* Store/load observers as dense counted arrays (amortized O(1)
     registration, order-preserving).  [nstore_hooks = 0] is the
     has-no-hooks fast-path test paid on every memory operation. *)
  mutable store_hooks : (t -> addr:int -> width:Insn.width -> unit) array;
  mutable nstore_hooks : int;
  mutable load_hooks : (t -> addr:int -> width:Insn.width -> unit) array;
  mutable nload_hooks : int;
  (* Pre-decoded instruction closures, parallel to [text]: slot [i] is a
     specialized [t -> unit] compiled from [text.(i)] with the operand
     shape (register vs immediate), access width, cc flag and
     fall-through pc all resolved at decode time.  The hot loop executes
     one indirect call instead of re-matching the [Insn.t] tree on every
     step.  [patch] recompiles the slot it touches; [rollback]
     recompiles the slots whose instruction changed. *)
  mutable code : (t -> unit) array;
  (* Monotonic text-content version, bumped by [patch] and by any
     [rollback] that changes text.  Checkpoints taken while no patching
     happens between them share a single text copy (see [text_copy]). *)
  mutable text_version : int;
  mutable text_snap : (int * Insn.t array) option;
  (* Hot-path profiler hooks.  The arrays belong to a {!Telemetry}-side
     [Profile.t]; the interpreter only bumps them.  Each [prof_exec]
     slot packs the control classification ([Profile.kind_*]) into its
     low two bits and the execution count above them (increment step 4),
     so one read-modify-write per step yields both the count and the
     branch-vs-transfer decision — no separate kind load;
     [profile_install] seeds the bits and [patch]/[rollback] keep them
     in sync with text.  Like the dispatch counters, none of this
     touches {!stats} — the differential fuzz harness's fast/generic
     parity is preserved, and a profiler-off run pays exactly one
     boolean test per step. *)
  mutable prof_on : bool;
  mutable prof_exec : int array;
  mutable prof_taken : int array;
  mutable prof_transfer : int -> int -> unit;  (* kind, executed slot *)
  (* Time-series sampler hook: a countdown over executed instructions.
     Same discipline as the profiler — a sampler-off run pays exactly
     one boolean test per step; when armed, one decrement per step and
     the hook fires with the live instruction count every [samp_every]
     executed instructions.  Never touches {!stats}. *)
  mutable samp_on : bool;
  mutable samp_every : int;
  mutable samp_left : int;
  mutable samp_hook : int -> unit;
}

let faultf t fmt =
  Format.kasprintf (fun reason -> raise (Fault { pc = t.pc; reason })) fmt

let no_probes : (t -> unit) array = [||]

(* Local copies of the {!Word} primitives used on the hot path: the
   non-flambda compiler only inlines within a module, so calling
   [Word.norm]/[Word.add] from here costs a real call per use.  These
   are definitionally identical to the [Word] versions. *)
let[@inline] norm x =
  let v = x land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x1_0000_0000 else v

let[@inline] uns x = x land 0xFFFFFFFF

(* Register accessors, inlined from {!Windows} (whose representation is
   exposed for exactly this): several reads/writes per simulated
   instruction, so the cross-module call mattered. *)
let get t r =
  let w = t.win in
  match r with
  | Reg.G 0 -> 0
  | Reg.G i -> w.Windows.globals.(i)
  | Reg.O i -> w.Windows.cur.Windows.outs.(i)
  | Reg.L i -> w.Windows.cur.Windows.locals.(i)
  | Reg.I i -> w.Windows.cur.Windows.ins.(i)

let set t r v =
  let w = t.win in
  let v = norm v in
  match r with
  | Reg.G 0 -> ()
  | Reg.G i -> w.Windows.globals.(i) <- v
  | Reg.O i -> w.Windows.cur.Windows.outs.(i) <- v
  | Reg.L i -> w.Windows.cur.Windows.locals.(i) <- v
  | Reg.I i -> w.Windows.cur.Windows.ins.(i) <- v

let operand t = function
  | Insn.Reg r -> get t r
  | Insn.Imm i -> Word.norm i

let on_trap t number handler = Hashtbl.replace t.traps number handler

let text_index t addr =
  let off = addr - t.text_base in
  if off < 0 || off land 3 <> 0 || off / 4 >= Array.length t.text then
    faultf t "pc 0x%x outside text" (Word.to_unsigned addr)
  else off / 4

let add_probe t addr f =
  let i = text_index t addr in
  (* Probes fire in registration order (append keeps it). *)
  t.probes.(i) <- Array.append t.probes.(i) [| f |]

let output t = Buffer.contents t.out
let print_string t s = Buffer.add_string t.out s

let sbrk t bytes =
  let old = t.brk in
  t.brk <- (t.brk + bytes + 7) land lnot 7;
  old

let fetch_at t addr = t.text.(text_index t addr)

let add_cycles t n = t.cycles <- t.cycles + n

(* ---------- profiling hooks ---------- *)

(* Classify one instruction for the profiler: (kind, static target
   slot or -1).  A linking [jmpl] (rd <> %g0) is an indirect call; a
   non-linking one is a return — [Asm.ret]/[Asm.retl] both write %g0. *)
let prof_classify t _i insn =
  let slot_of = function
    | Insn.Abs a ->
      let off = a - t.text_base in
      if off >= 0 && off land 3 = 0 && off lsr 2 < Array.length t.text then
        off lsr 2
      else -1
    | Insn.Sym _ -> -1
  in
  match insn with
  | Insn.Branch { target; _ } -> (Profile.kind_branch, slot_of target)
  | Insn.Call { target } -> (Profile.kind_call, slot_of target)
  | Insn.Jmpl { rd = Reg.G 0; _ } -> (Profile.kind_ret, -1)
  | Insn.Jmpl _ -> (Profile.kind_call, -1)
  | _ -> (Profile.kind_plain, -1)

let profile_static t = Array.mapi (prof_classify t) t.text

let profile_install t ~exec ~taken ~transfer =
  let n = Array.length t.text in
  if Array.length exec < n || Array.length taken < n then
    invalid_arg "Cpu.profile_install: counter arrays shorter than text";
  t.prof_exec <- exec;
  t.prof_taken <- taken;
  (* Seed the kind bits (counts sit above them, see the field doc). *)
  Array.iteri
    (fun i insn ->
      exec.(i) <- (exec.(i) land lnot 3) lor fst (prof_classify t i insn))
    t.text;
  t.prof_transfer <- transfer;
  t.prof_on <- true

let profile_enabled t = t.prof_on

let profile_set_enabled t on =
  if on && Array.length t.prof_exec = 0 then
    invalid_arg "Cpu.profile_set_enabled: no profiler installed";
  t.prof_on <- on

let sample_install t ~every ~hook =
  if every < 1 then invalid_arg "Cpu.sample_install: every must be >= 1";
  t.samp_every <- every;
  t.samp_left <- every;
  t.samp_hook <- hook;
  t.samp_on <- true

let sample_enabled t = t.samp_on

let sample_set_enabled t on =
  if on && t.samp_every = 0 then
    invalid_arg "Cpu.sample_set_enabled: no sampler installed";
  t.samp_on <- on

(* Post-step sampler countdown; fires the hook on every [samp_every]th
   executed instruction. *)
let[@inline] samp_step t =
  let left = t.samp_left - 1 in
  if left <= 0 then begin
    t.samp_left <- t.samp_every;
    t.samp_hook t.ninstrs
  end
  else t.samp_left <- left

let prof_repatch t i insn =
  let c = t.prof_exec in
  if Array.length c > i then
    c.(i) <- (c.(i) land lnot 3) lor fst (prof_classify t i insn)

(* Post-step accounting for the executed slot [idx]: bump its exec
   counter (packed: count above the two kind bits, so the same word
   also decides what else to do); for a branch, compare the new pc
   against the fall-through to detect taken-ness; calls and returns go
   through the (rare) transfer closure, which reads the destination
   from [t.pc]. *)
let[@inline] prof_step t idx =
  let c = t.prof_exec in
  let v = Array.unsafe_get c idx + 4 in
  Array.unsafe_set c idx v;
  let k = v land 3 in
  if k <> 0 then
    if k = 1 then begin
      if t.pc <> t.text_base + ((idx + 1) lsl 2) then begin
        let tk = t.prof_taken in
        Array.unsafe_set tk idx (Array.unsafe_get tk idx + 1)
      end
    end
    else t.prof_transfer k idx

(* Cache probe, inlined from {!Cache.access}: runs once per fetch and
   once per data access.  Counters live in the shared [Cache.t] so
   [stats]/[flush] behave exactly as before. *)
let cache_access t addr =
  let c = t.cache in
  let line_addr = uns addr lsr c.Cache.line_bits in
  let idx =
    if c.Cache.mask >= 0 then line_addr land c.Cache.mask
    else line_addr mod c.Cache.lines
  in
  if Array.unsafe_get c.Cache.tags idx = line_addr then begin
    c.Cache.hits <- c.Cache.hits + 1;
    true
  end
  else begin
    c.Cache.misses <- c.Cache.misses + 1;
    Array.unsafe_set c.Cache.tags idx line_addr;
    false
  end

let data_access t addr =
  if not (cache_access t addr) then add_cycles t t.config.miss_penalty

let alu_result t op a b =
  match op with
  | Insn.Add -> Word.add a b
  | Insn.Sub -> Word.sub a b
  | Insn.And -> Word.logand a b
  | Insn.Or -> Word.logor a b
  | Insn.Xor -> Word.logxor a b
  | Insn.Andn -> Word.logand a (Word.lognot b)
  | Insn.Orn -> Word.logor a (Word.lognot b)
  | Insn.Xnor -> Word.lognot (Word.logxor a b)
  | Insn.Sll -> Word.sll a b
  | Insn.Srl -> Word.srl a b
  | Insn.Sra -> Word.sra a b
  | Insn.Smul ->
    add_cycles t (t.config.mul_cycles - 1);
    Word.mul a b
  | Insn.Umul ->
    add_cycles t (t.config.mul_cycles - 1);
    Word.umul a b
  | Insn.Sdiv ->
    add_cycles t (t.config.div_cycles - 1);
    (try Word.sdiv a b with Division_by_zero -> faultf t "division by zero")
  | Insn.Udiv ->
    add_cycles t (t.config.div_cycles - 1);
    (try Word.udiv a b with Division_by_zero -> faultf t "division by zero")

(* Allocation-free flag update: builds the packed bits directly (the
   seed allocated a [Cond.icc] record per cc-setting instruction). *)
let set_icc t op a b r =
  let nz = (if r < 0 then 8 else 0) lor if r = 0 then 4 else 0 in
  let vc =
    match op with
    | Insn.Add ->
      (if Word.add_overflow a b then 2 else 0)
      lor if Word.add_carry a b then 1 else 0
    | Insn.Sub ->
      (if Word.sub_overflow a b then 2 else 0)
      lor if Word.sub_carry a b then 1 else 0
    | Insn.And | Insn.Or | Insn.Xor | Insn.Andn | Insn.Orn | Insn.Xnor
    | Insn.Sll | Insn.Srl | Insn.Sra | Insn.Smul | Insn.Umul | Insn.Sdiv
    | Insn.Udiv ->
      0
  in
  t.icc <- nz lor vc

let resolved t = function
  | Insn.Abs a -> a
  | Insn.Sym s -> faultf t "unresolved label %s at runtime" s

let pair_reg t rd =
  let i = Reg.index rd in
  if i land 1 <> 0 then faultf t "odd register %s in double access" (Reg.to_string rd)
  else Reg.of_index (i + 1)

let double_align t ea = if ea land 7 <> 0 then faultf t "misaligned double access 0x%x" ea

let run_store_hooks t ea width =
  let hs = t.store_hooks in
  t.nstore_hook_dispatches <- t.nstore_hook_dispatches + t.nstore_hooks;
  for i = 0 to t.nstore_hooks - 1 do
    (Array.unsafe_get hs i) t ~addr:ea ~width
  done

let run_load_hooks t ea width =
  let hs = t.load_hooks in
  t.nload_hook_dispatches <- t.nload_hook_dispatches + t.nload_hooks;
  for i = 0 to t.nload_hooks - 1 do
    (Array.unsafe_get hs i) t ~addr:ea ~width
  done

(* Width-specialized memory-operation bodies, shared between the
   generic {!execute} (probe slow path) and the pre-decoded closures
   built by {!compile}, so the two paths cannot diverge. *)

let ld_word t ea rd =
  t.nloads <- t.nloads + 1;
  add_cycles t t.config.load_cycles;
  (* Inlined aligned-word fast path: a hit on the memory's single-slot
     page cache is one compare + one array read. *)
  data_access t ea;
  let a = uns ea in
  if a land 3 <> 0 then faultf t "misaligned 4-byte load at 0x%x" a;
  let m = t.mem in
  let v =
    if a lsr Memory.page_bits = m.Memory.last_key then
      Array.unsafe_get m.Memory.last_page ((a land Memory.offset_mask) lsr 2)
    else Memory.read_word m ea
  in
  set t rd v;
  if t.nload_hooks <> 0 then run_load_hooks t ea Insn.Word

let ld_double t ea rd =
  t.nloads <- t.nloads + 1;
  add_cycles t t.config.load_cycles;
  double_align t ea;
  let odd = pair_reg t rd in
  data_access t ea;
  data_access t (ea + 4);
  (try
     set t rd (Memory.read_word t.mem ea);
     set t odd (Memory.read_word t.mem (ea + 4))
   with Memory.Misaligned { addr; width } ->
     faultf t "misaligned %d-byte load at 0x%x" width (Word.to_unsigned addr));
  if t.nload_hooks <> 0 then run_load_hooks t ea Insn.Double

let ld_sub t ea width signed rd =
  t.nloads <- t.nloads + 1;
  add_cycles t t.config.load_cycles;
  data_access t ea;
  (try
     let v =
       if signed then Memory.read_signed t.mem ea width
       else Memory.read_unsigned t.mem ea width
     in
     set t rd v
   with Memory.Misaligned { addr; width } ->
     faultf t "misaligned %d-byte load at 0x%x" width (Word.to_unsigned addr));
  if t.nload_hooks <> 0 then run_load_hooks t ea width

let st_word t ea rd =
  t.nstores <- t.nstores + 1;
  add_cycles t t.config.store_cycles;
  (* Inlined aligned-word fast path; the slot only ever holds
     materialized pages, so writing through it is safe.  Register
     values are already normalized. *)
  data_access t ea;
  let a = uns ea in
  if a land 3 <> 0 then faultf t "misaligned 4-byte store at 0x%x" a;
  let m = t.mem in
  let v = get t rd in
  if a lsr Memory.page_bits = m.Memory.last_key then
    Array.unsafe_set m.Memory.last_page ((a land Memory.offset_mask) lsr 2) v
  else Memory.write_word m ea v;
  if t.nstore_hooks <> 0 then run_store_hooks t ea Insn.Word

let st_double t ea rd =
  t.nstores <- t.nstores + 1;
  add_cycles t t.config.store_cycles;
  double_align t ea;
  let odd = pair_reg t rd in
  data_access t ea;
  data_access t (ea + 4);
  (try
     Memory.write_word t.mem ea (get t rd);
     Memory.write_word t.mem (ea + 4) (get t odd)
   with Memory.Misaligned { addr; width } ->
     faultf t "misaligned %d-byte store at 0x%x" width (Word.to_unsigned addr));
  if t.nstore_hooks <> 0 then run_store_hooks t ea Insn.Double

let st_byte t ea rd =
  t.nstores <- t.nstores + 1;
  add_cycles t t.config.store_cycles;
  data_access t ea;
  (try Memory.write_byte t.mem ea (get t rd land 0xFF)
   with Memory.Misaligned { addr; width } ->
     faultf t "misaligned %d-byte store at 0x%x" width (Word.to_unsigned addr));
  if t.nstore_hooks <> 0 then run_store_hooks t ea Insn.Byte

let st_half t ea rd =
  t.nstores <- t.nstores + 1;
  add_cycles t t.config.store_cycles;
  data_access t ea;
  (try Memory.write_half t.mem ea (get t rd land 0xFFFF)
   with Memory.Misaligned { addr; width } ->
     faultf t "misaligned %d-byte store at 0x%x" width (Word.to_unsigned addr));
  if t.nstore_hooks <> 0 then run_store_hooks t ea Insn.Half

(* Execute [insn]; [next] is the fall-through pc.  This generic
   interpreter only runs on the probe slow path (and so also backs the
   differential fuzz check against the pre-decoded fast path). *)
let execute t insn next =
  match insn with
  | Insn.Nop -> t.pc <- next
  | Insn.Alu { op; cc; rs1; op2; rd } ->
    let a = get t rs1 and b = operand t op2 in
    let r = alu_result t op a b in
    set t rd r;
    if cc then set_icc t op a b r;
    t.pc <- next
  | Insn.Sethi { imm; rd } ->
    set t rd (Word.norm (imm lsl 10));
    t.pc <- next
  | Insn.Ld { width; signed; rs1; off; rd } ->
    let ea = Word.add (get t rs1) (operand t off) in
    (match width with
    | Insn.Word -> ld_word t ea rd
    | Insn.Double -> ld_double t ea rd
    | Insn.Byte | Insn.Half -> ld_sub t ea width signed rd);
    t.pc <- next
  | Insn.St { width; rd; rs1; off } ->
    let ea = Word.add (get t rs1) (operand t off) in
    (match width with
    | Insn.Word -> st_word t ea rd
    | Insn.Double -> st_double t ea rd
    | Insn.Byte -> st_byte t ea rd
    | Insn.Half -> st_half t ea rd);
    t.pc <- next
  | Insn.Branch { cond; target } ->
    t.nbranches <- t.nbranches + 1;
    if Cond.eval_packed cond t.icc then t.pc <- resolved t target
    else t.pc <- next
  | Insn.Call { target } ->
    set t Reg.o7 t.pc;
    t.pc <- resolved t target
  | Insn.Jmpl { rs1; off; rd } ->
    let dest = Word.add (get t rs1) (operand t off) in
    if dest land 3 <> 0 then faultf t "misaligned jump to 0x%x" (Word.to_unsigned dest);
    set t rd t.pc;
    t.pc <- dest
  | Insn.Save { rs1; op2; rd } ->
    let v = Word.add (get t rs1) (operand t op2) in
    let spills = Windows.spills t.win in
    Windows.save t.win;
    if Windows.spills t.win > spills then add_cycles t t.config.spill_cycles;
    set t rd v;
    t.pc <- next
  | Insn.Restore { rs1; op2; rd } ->
    let v = Word.add (get t rs1) (operand t op2) in
    let fills = Windows.fills t.win in
    (try Windows.restore t.win
     with Windows.Underflow -> faultf t "register window underflow");
    if Windows.fills t.win > fills then add_cycles t t.config.spill_cycles;
    set t rd v;
    t.pc <- next
  | Insn.Trap { number } ->
    t.ntraps <- t.ntraps + 1;
    add_cycles t t.config.trap_cycles;
    t.pc <- next;
    (match Hashtbl.find_opt t.traps number with
    | Some handler -> handler t
    | None -> faultf t "unhandled trap %d" number)

(* Packed condition codes for the compile-time-specialized [addcc] /
   [subcc] closures below: same bits as {!set_icc}, computed without
   the cross-module [Word.add_overflow]/[add_carry] calls. *)
let[@inline] icc_add a b r =
  (if r < 0 then 8 else 0)
  lor (if r = 0 then 4 else 0)
  lor (if (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0) then 2
       else 0)
  lor if uns a + uns b > 0xFFFFFFFF then 1 else 0

let[@inline] icc_sub a b r =
  (if r < 0 then 8 else 0)
  lor (if r = 0 then 4 else 0)
  lor (if (a >= 0 && b < 0 && r < 0) || (a < 0 && b >= 0 && r >= 0) then 2
       else 0)
  lor if uns a < uns b then 1 else 0

(* Pre-decode one instruction into a specialized closure.  The
   fall-through pc, operand shapes, access width and cc flag are all
   resolved here, once, instead of being re-matched on every execution.
   The bodies delegate to the same [ld_*]/[st_*]/[alu_result]/[set_icc]
   helpers as {!execute}, so both paths stay bit-identical. *)
let compile text_base idx insn : t -> unit =
  let next = text_base + ((idx + 1) lsl 2) in
  match insn with
  | Insn.Nop -> fun t -> t.pc <- next
  | Insn.Alu { op; cc; rs1; op2; rd } -> (
    match (op, cc, op2) with
    (* The shapes below cover almost every ALU instruction the mini-C
       compiler emits (address arithmetic, loop increments, and the
       [mov]/[cmp] synthetics); specializing them removes both the
       per-execution dispatch on [op] and the [Word] calls. *)
    | Insn.Add, false, Insn.Imm i ->
      let b = norm i in
      fun t ->
        set t rd (norm (get t rs1 + b));
        t.pc <- next
    | Insn.Add, false, Insn.Reg rs2 ->
      fun t ->
        set t rd (norm (get t rs1 + get t rs2));
        t.pc <- next
    | Insn.Sub, false, Insn.Imm i ->
      let b = norm i in
      fun t ->
        set t rd (norm (get t rs1 - b));
        t.pc <- next
    | Insn.Sub, false, Insn.Reg rs2 ->
      fun t ->
        set t rd (norm (get t rs1 - get t rs2));
        t.pc <- next
    | Insn.Or, false, Insn.Imm i ->
      let b = norm i in
      fun t ->
        set t rd (norm (get t rs1 lor b));
        t.pc <- next
    | Insn.Or, false, Insn.Reg rs2 ->
      fun t ->
        set t rd (norm (get t rs1 lor get t rs2));
        t.pc <- next
    | Insn.Sll, false, Insn.Imm i ->
      let b = norm i land 31 in
      fun t ->
        set t rd (norm (get t rs1 lsl b));
        t.pc <- next
    | Insn.Add, true, Insn.Imm i ->
      let b = norm i in
      fun t ->
        let a = get t rs1 in
        let r = norm (a + b) in
        set t rd r;
        t.icc <- icc_add a b r;
        t.pc <- next
    | Insn.Add, true, Insn.Reg rs2 ->
      fun t ->
        let a = get t rs1 and b = get t rs2 in
        let r = norm (a + b) in
        set t rd r;
        t.icc <- icc_add a b r;
        t.pc <- next
    | Insn.Sub, true, Insn.Imm i ->
      let b = norm i in
      fun t ->
        let a = get t rs1 in
        let r = norm (a - b) in
        set t rd r;
        t.icc <- icc_sub a b r;
        t.pc <- next
    | Insn.Sub, true, Insn.Reg rs2 ->
      fun t ->
        let a = get t rs1 and b = get t rs2 in
        let r = norm (a - b) in
        set t rd r;
        t.icc <- icc_sub a b r;
        t.pc <- next
    | _, _, Insn.Imm i ->
      let b = norm i in
      if cc then
        fun t ->
          let a = get t rs1 in
          let r = alu_result t op a b in
          set t rd r;
          set_icc t op a b r;
          t.pc <- next
      else
        fun t ->
          set t rd (alu_result t op (get t rs1) b);
          t.pc <- next
    | _, _, Insn.Reg rs2 ->
      if cc then
        fun t ->
          let a = get t rs1 and b = get t rs2 in
          let r = alu_result t op a b in
          set t rd r;
          set_icc t op a b r;
          t.pc <- next
      else
        fun t ->
          set t rd (alu_result t op (get t rs1) (get t rs2));
          t.pc <- next)
  | Insn.Sethi { imm; rd } ->
    let v = Word.norm (imm lsl 10) in
    fun t ->
      set t rd v;
      t.pc <- next
  | Insn.Ld { width; signed; rs1; off; rd } -> (
    match (width, off) with
    | Insn.Word, Insn.Imm i ->
      let i = Word.norm i in
      fun t ->
        ld_word t (norm (get t rs1 + i)) rd;
        t.pc <- next
    | Insn.Word, Insn.Reg rs2 ->
      fun t ->
        ld_word t (norm (get t rs1 + get t rs2)) rd;
        t.pc <- next
    | Insn.Double, _ ->
      fun t ->
        ld_double t (Word.add (get t rs1) (operand t off)) rd;
        t.pc <- next
    | (Insn.Byte | Insn.Half), _ ->
      fun t ->
        ld_sub t (Word.add (get t rs1) (operand t off)) width signed rd;
        t.pc <- next)
  | Insn.St { width; rd; rs1; off } -> (
    match (width, off) with
    | Insn.Word, Insn.Imm i ->
      let i = Word.norm i in
      fun t ->
        st_word t (norm (get t rs1 + i)) rd;
        t.pc <- next
    | Insn.Word, Insn.Reg rs2 ->
      fun t ->
        st_word t (norm (get t rs1 + get t rs2)) rd;
        t.pc <- next
    | Insn.Double, _ ->
      fun t ->
        st_double t (Word.add (get t rs1) (operand t off)) rd;
        t.pc <- next
    | Insn.Byte, _ ->
      fun t ->
        st_byte t (Word.add (get t rs1) (operand t off)) rd;
        t.pc <- next
    | Insn.Half, _ ->
      fun t ->
        st_half t (Word.add (get t rs1) (operand t off)) rd;
        t.pc <- next)
  | Insn.Branch { cond; target } -> (
    match (target, cond) with
    | Insn.Abs a, Cond.A ->
      fun t ->
        t.nbranches <- t.nbranches + 1;
        t.pc <- a
    | Insn.Abs a, _ ->
      fun t ->
        t.nbranches <- t.nbranches + 1;
        t.pc <- (if Cond.eval_packed cond t.icc then a else next)
    | Insn.Sym _, _ ->
      fun t ->
        t.nbranches <- t.nbranches + 1;
        if Cond.eval_packed cond t.icc then t.pc <- resolved t target
        else t.pc <- next)
  | Insn.Call { target } -> (
    match target with
    | Insn.Abs a ->
      fun t ->
        set t Reg.o7 t.pc;
        t.pc <- a
    | Insn.Sym _ ->
      fun t ->
        set t Reg.o7 t.pc;
        t.pc <- resolved t target)
  | Insn.Jmpl { rs1; off; rd } ->
    fun t ->
      let dest = Word.add (get t rs1) (operand t off) in
      if dest land 3 <> 0 then
        faultf t "misaligned jump to 0x%x" (Word.to_unsigned dest);
      set t rd t.pc;
      t.pc <- dest
  | Insn.Save { rs1; op2; rd } ->
    fun t ->
      let v = Word.add (get t rs1) (operand t op2) in
      let spills = Windows.spills t.win in
      Windows.save t.win;
      if Windows.spills t.win > spills then add_cycles t t.config.spill_cycles;
      set t rd v;
      t.pc <- next
  | Insn.Restore { rs1; op2; rd } ->
    fun t ->
      let v = Word.add (get t rs1) (operand t op2) in
      let fills = Windows.fills t.win in
      (try Windows.restore t.win
       with Windows.Underflow -> faultf t "register window underflow");
      if Windows.fills t.win > fills then add_cycles t t.config.spill_cycles;
      set t rd v;
      t.pc <- next
  | Insn.Trap { number } ->
    fun t ->
      t.ntraps <- t.ntraps + 1;
      add_cycles t t.config.trap_cycles;
      t.pc <- next;
      (match Hashtbl.find_opt t.traps number with
      | Some handler -> handler t
      | None -> faultf t "unhandled trap %d" number)

let create ?(config = default_config) (image : Assembler.image) =
  let mem = Memory.create () in
  List.iter (fun (addr, v) -> Memory.write_word mem addr v) image.data_init;
  let text = Array.copy image.text in
  let t =
    {
      mem;
      cache = Cache.create ~size_bytes:config.cache_size ~line_bytes:config.line_bytes ();
      win = Windows.create ~nwindows:config.nwindows ();
      pc = image.entry;
      icc = Cond.packed_zero;
      halted = None;
      ninstrs = 0;
      cycles = 0;
      nloads = 0;
      nstores = 0;
      nbranches = 0;
      ntraps = 0;
      nprobe_dispatches = 0;
      nstore_hook_dispatches = 0;
      nload_hook_dispatches = 0;
      text;
      text_base = image.text_base;
      traps = Hashtbl.create 16;
      probes = Array.make (Array.length image.text) no_probes;
      out = Buffer.create 256;
      brk = (image.data_limit + 7) land lnot 7;
      config;
      store_hooks = [||];
      nstore_hooks = 0;
      load_hooks = [||];
      nload_hooks = 0;
      code = Array.mapi (compile image.text_base) text;
      text_version = 0;
      text_snap = None;
      prof_on = false;
      prof_exec = [||];
      prof_taken = [||];
      prof_transfer = (fun _ _ -> ());
      samp_on = false;
      samp_every = 0;
      samp_left = 0;
      samp_hook = ignore;
    }
  in
  Windows.set t.win Reg.sp 0x7FFF_FF00;
  t

let patch t addr insn =
  let i = text_index t addr in
  t.text.(i) <- insn;
  t.code.(i) <- compile t.text_base i insn;
  prof_repatch t i insn;
  t.text_version <- t.text_version + 1

let step t =
  let off = t.pc - t.text_base in
  let idx = off lsr 2 in
  (* A negative [off] shifts to a huge positive [idx], so one unsigned
     comparison covers both underflow and overflow. *)
  if off land 3 <> 0 || idx >= Array.length t.text then
    faultf t "pc 0x%x outside text" (Word.to_unsigned t.pc);
  let ps = Array.unsafe_get t.probes idx in
  if ps == no_probes then begin
    if not (cache_access t t.pc) then add_cycles t t.config.miss_penalty;
    t.ninstrs <- t.ninstrs + 1;
    add_cycles t 1;
    (Array.unsafe_get t.code idx) t;
    if t.prof_on then prof_step t idx;
    if t.samp_on then samp_step t
  end
  else begin
    t.nprobe_dispatches <- t.nprobe_dispatches + Array.length ps;
    Array.iter (fun f -> f t) ps;
    (* A probe may patch text or move the pc (breakpoint callbacks);
       re-fetch through the checked path and fall back to the generic
       interpreter. *)
    let eidx = text_index t t.pc in
    let insn = Array.unsafe_get t.text eidx in
    if not (cache_access t t.pc) then add_cycles t t.config.miss_penalty;
    t.ninstrs <- t.ninstrs + 1;
    add_cycles t 1;
    execute t insn (t.pc + 4);
    if t.prof_on then prof_step t eidx;
    if t.samp_on then samp_step t
  end

let halt t code = t.halted <- Some code

let run ?(fuel = 200_000_000) t =
  (* Counted loop: [halted] can only flip inside [step] (a trap handler,
     probe, or hook), so a single field test per iteration suffices — no
     option allocation, no per-step match on the fuel path. *)
  let n = ref 0 in
  while t.halted == None && !n < fuel do
    step t;
    incr n
  done;
  match t.halted with
  | Some code -> code
  | None -> raise (Out_of_fuel { executed = !n })

let install_basic_services t =
  on_trap t 0 (fun t -> halt t (get t (Reg.o 0)));
  on_trap t 1 (fun t -> print_string t (string_of_int (get t (Reg.o 0))));
  on_trap t 2 (fun t ->
      print_string t (String.make 1 (Char.chr (get t (Reg.o 0) land 0xFF))));
  on_trap t 3 (fun t -> set t (Reg.o 0) (sbrk t (get t (Reg.o 0))))

let mem t = t.mem
let config t = t.config

(* Checkpoint/replay support (the paper's §5 mentions checkpointing
   data for replayed execution as a data-breakpoint application).
   Checkpoints are copy-on-write: capturing memory is O(1) via
   {!Memory.snapshot_cow}; only pages the run subsequently dirties get
   copied, and adjacent checkpoints share every untouched page.  The
   cache (tags *and* counters) and window spill/fill counters are
   captured exactly, so re-execution from a checkpoint reproduces the
   original run's [stats] bit-for-bit. *)
type checkpoint = {
  cp_mem : Memory.view;
  cp_win : Windows.t;
  cp_cache : Cache.snapshot;
  cp_pc : int;
  cp_icc : int;
  cp_halted : int option;
  cp_ninstrs : int;
  cp_cycles : int;
  cp_nloads : int;
  cp_nstores : int;
  cp_nbranches : int;
  cp_ntraps : int;
  cp_text : Insn.t array;
      (* shared between checkpoints while no patching intervenes *)
  cp_text_version : int;
  cp_out : string;
  cp_brk : int;
}

(* One text copy per text version: checkpoints taken while no [patch]
   intervened share the same array. *)
let text_copy t =
  match t.text_snap with
  | Some (v, arr) when v = t.text_version -> arr
  | _ ->
    let arr = Array.copy t.text in
    t.text_snap <- Some (t.text_version, arr);
    arr

let checkpoint t =
  {
    cp_mem = Memory.snapshot_cow t.mem;
    cp_win = Windows.copy t.win;
    cp_cache = Cache.snapshot t.cache;
    cp_pc = t.pc;
    cp_icc = t.icc;
    cp_halted = t.halted;
    cp_ninstrs = t.ninstrs;
    cp_cycles = t.cycles;
    cp_nloads = t.nloads;
    cp_nstores = t.nstores;
    cp_nbranches = t.nbranches;
    cp_ntraps = t.ntraps;
    cp_text = text_copy t;
    cp_text_version = t.text_version;
    cp_out = Buffer.contents t.out;
    cp_brk = t.brk;
  }

let rollback t cp =
  Memory.restore_cow t.mem cp.cp_mem;
  Windows.restore_from t.win cp.cp_win;
  t.pc <- cp.cp_pc;
  t.icc <- cp.cp_icc;
  t.halted <- cp.cp_halted;
  t.ninstrs <- cp.cp_ninstrs;
  t.cycles <- cp.cp_cycles;
  t.nloads <- cp.cp_nloads;
  t.nstores <- cp.cp_nstores;
  t.nbranches <- cp.cp_nbranches;
  t.ntraps <- cp.cp_ntraps;
  if cp.cp_text_version <> t.text_version then begin
    for i = 0 to Array.length t.text - 1 do
      let insn = cp.cp_text.(i) in
      (* [Insn.t] values are immutable, so a physically unchanged slot
         still has a valid pre-decoded closure; only recompile slots the
         run actually patched. *)
      if insn != t.text.(i) then begin
        t.text.(i) <- insn;
        t.code.(i) <- compile t.text_base i insn;
        prof_repatch t i insn
      end
    done;
    (* Text now equals [cp_text]; give it a fresh monotonic version so a
       stale cached copy can never be mistaken for the current text, and
       seed the cache with [cp_text] itself (it is a valid copy). *)
    t.text_version <- t.text_version + 1;
    t.text_snap <- Some (t.text_version, cp.cp_text)
  end;
  Buffer.clear t.out;
  Buffer.add_string t.out cp.cp_out;
  t.brk <- cp.cp_brk;
  (* Exact cache restoration — tags and hit/miss counters — so replayed
     cycle counts match the original run exactly. *)
  Cache.restore t.cache cp.cp_cache

let checkpoint_view cp = cp.cp_mem
let checkpoint_insns cp = cp.cp_ninstrs

let checkpoint_overhead_bytes cp =
  (* Fixed (non-page) cost of one checkpoint: cache tags, window
     frames (8 globals + 24 words per frame), captured output, and the
     scalar fields.  Page bytes are accounted separately by the journal
     via {!Memory.view_diff}. *)
  Cache.snapshot_bytes cp.cp_cache
  + ((8 + (Windows.depth cp.cp_win * 24)) * 8)
  + String.length cp.cp_out + (15 * 8)

(* Architectural-state digest for the replay determinism guard: pc,
   condition codes, heap break, halt status, captured output, the full
   register-window stack and every nonzero memory page in ascending
   address order.  Execution counters and cache state are deliberately
   excluded — tests compare [stats] separately — and all-zero pages are
   skipped so that page-materialization differences between a run and
   its replay cannot perturb the digest. *)
let all_zero arr =
  let n = Array.length arr in
  let rec go i = i >= n || (Array.unsafe_get arr i = 0 && go (i + 1)) in
  go 0

let state_digest t =
  let b = Buffer.create 65536 in
  let add_int v = Buffer.add_int64_le b (Int64.of_int v) in
  add_int t.pc;
  add_int t.icc;
  add_int t.brk;
  (match t.halted with
  | None -> add_int min_int
  | Some c ->
    add_int 1;
    add_int c);
  add_int (Buffer.length t.out);
  Buffer.add_buffer b t.out;
  let w = t.win in
  Array.iter add_int w.Windows.globals;
  add_int w.Windows.depth;
  add_int w.Windows.resident;
  List.iter
    (fun (f : Windows.frame) ->
      Array.iter add_int f.Windows.locals;
      Array.iter add_int f.Windows.ins;
      Array.iter add_int f.Windows.outs)
    w.Windows.frames;
  let pages = ref [] in
  Memory.iter_pages t.mem (fun key arr ->
      if not (all_zero arr) then pages := (key, arr) :: !pages);
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare (a : int) b) !pages
  in
  List.iter
    (fun (key, arr) ->
      add_int key;
      Array.iter add_int arr)
    sorted;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))
let pc t = t.pc
let set_pc t pc = t.pc <- pc
let brk t = t.brk
let halted t = t.halted

let push_hook arr n hook =
  let cap = Array.length arr in
  if n < cap then begin
    arr.(n) <- hook;
    arr
  end
  else begin
    let bigger = Array.make (max 4 (2 * cap)) hook in
    Array.blit arr 0 bigger 0 n;
    bigger
  end

let set_store_hook t hook =
  t.store_hooks <- push_hook t.store_hooks t.nstore_hooks hook;
  t.nstore_hooks <- t.nstore_hooks + 1

let set_load_hook t hook =
  t.load_hooks <- push_hook t.load_hooks t.nload_hooks hook;
  t.nload_hooks <- t.nload_hooks + 1

type stats = {
  instrs : int;
  cycles : int;
  loads : int;
  stores : int;
  branches : int;
  traps : int;
  cache_hits : int;
  cache_misses : int;
  window_spills : int;
}

let instr_count t = t.ninstrs
let cycle_count (t : t) = t.cycles
let probe_dispatches t = t.nprobe_dispatches
let store_hook_dispatches t = t.nstore_hook_dispatches
let load_hook_dispatches t = t.nload_hook_dispatches
let trap_count t = t.ntraps

let stats t =
  {
    instrs = t.ninstrs;
    cycles = t.cycles;
    loads = t.nloads;
    stores = t.nstores;
    branches = t.nbranches;
    traps = t.ntraps;
    cache_hits = Cache.hits t.cache;
    cache_misses = Cache.misses t.cache;
    window_spills = Windows.spills t.win;
  }
